//! JSON (de)serialization of specification graphs.
//!
//! Models are data: a downstream user dimensioning a platform wants to
//! version their specification, diff it, and feed it to the explorer from
//! a file. All model types derive Serde; this module adds the convenience
//! entry points and guarantees the round-trip.

use flexplore_spec::SpecificationGraph;

/// Serializes a specification graph to pretty-printed JSON.
///
/// # Errors
///
/// Returns the underlying `serde_json` error (practically unreachable for
/// these types).
pub fn spec_to_json(spec: &SpecificationGraph) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(spec)
}

/// Deserializes a specification graph from JSON.
///
/// The graph is re-validated after loading so that hand-edited files with
/// structural defects are rejected eagerly.
///
/// # Errors
///
/// Returns a `serde_json` error for malformed JSON; structural defects are
/// reported as a custom deserialization error.
pub fn spec_from_json(json: &str) -> Result<SpecificationGraph, serde_json::Error> {
    let spec: SpecificationGraph = serde_json::from_str(json)?;
    spec.validate()
        .map_err(<serde_json::Error as serde::de::Error>::custom)?;
    Ok(spec)
}

/// Deserializes a specification graph from JSON **without** re-validating.
///
/// `flexplore lint` wants to load structurally defective files (dangling
/// ids, containment cycles, out-of-range mapping endpoints) and report the
/// defects itself with stable diagnostic codes instead of rejecting the
/// file at parse time. Everything else should keep using
/// [`spec_from_json`], which validates eagerly.
///
/// # Errors
///
/// Returns a `serde_json` error for malformed JSON only.
pub fn spec_from_json_unvalidated(json: &str) -> Result<SpecificationGraph, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_top_box::set_top_box;
    use crate::synthetic::{synthetic_spec, SyntheticConfig};
    use crate::tv_decoder::tv_decoder;
    use flexplore_explore::{explore, ExploreOptions};

    #[test]
    fn set_top_box_round_trips() {
        let stb = set_top_box();
        let json = spec_to_json(&stb.spec).unwrap();
        let back = spec_from_json(&json).unwrap();
        assert_eq!(back.mapping_count(), stb.spec.mapping_count());
        assert_eq!(back.vertex_set_size(), stb.spec.vertex_set_size());
        // The reloaded model explores to the same front.
        let a = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
        let b = explore(&back, &ExploreOptions::paper()).unwrap();
        assert_eq!(a.front.objectives(), b.front.objectives());
    }

    #[test]
    fn tv_decoder_round_trips() {
        let tv = tv_decoder();
        let json = spec_to_json(&tv.spec).unwrap();
        let back = spec_from_json(&json).unwrap();
        assert_eq!(back.name(), tv.spec.name());
        assert_eq!(back.mapping_count(), tv.spec.mapping_count());
    }

    #[test]
    fn synthetic_round_trips() {
        let spec = synthetic_spec(&SyntheticConfig::medium(3));
        let json = spec_to_json(&spec).unwrap();
        let back = spec_from_json(&json).unwrap();
        assert_eq!(back.mapping_count(), spec.mapping_count());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(spec_from_json("{not json").is_err());
        assert!(spec_from_json("{}").is_err());
    }
}
