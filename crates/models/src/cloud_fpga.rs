//! Seeded generator family: multi-tenant cloud FPGA platforms.
//!
//! Cloud providers rent FPGA fabric by the slot: a shell handles PCIe and
//! memory, and each tenant loads accelerator bitstreams into a partially
//! reconfigurable region. A tenant workload runs either as plain software
//! on host vCPUs or on one of its accelerator designs — the same
//! alternative-refinement structure as the paper's reconfigurable
//! set-top-box, scaled to several tenants sharing one device. The platform
//! question: how many host CPUs and which slot designs make the cheapest
//! deployment that keeps every tenant's workload flexible? The generator
//! produces specifications of that shape:
//!
//! * one top-level interface of **tenants**, each an ingest → kernel
//!   (alternatives: software / accelerated) → egress pipeline;
//! * per-tenant accelerated kernels map only to that tenant's slot
//!   designs (cloud isolation: no cross-tenant bitstream sharing);
//! * an architecture of host CPUs on a PCIe bus and one reconfigurable
//!   slot per tenant, each with its own design library.
//!
//! Fully deterministic: equal [`CloudFpgaConfig`]s produce byte-identical
//! specifications.

use flexplore_hgraph::{PortDirection, PortTarget, Scope};
use flexplore_sched::Time;
use flexplore_spec::{ArchitectureGraph, Cost, ProblemGraph, ProcessAttrs, SpecificationGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a generated multi-tenant cloud-FPGA specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudFpgaConfig {
    /// RNG seed; equal configs produce identical specifications.
    pub seed: u64,
    /// Tenants (each gets one reconfigurable slot of its own).
    pub tenants: usize,
    /// Kernel alternatives per tenant, **including** the software one
    /// (values ≤ 1 generate software-only tenants).
    pub kernel_alternatives: usize,
    /// Designs in each tenant's slot library.
    pub designs_per_slot: usize,
    /// Host vCPUs (run every software process).
    pub host_cpus: usize,
    /// Fraction of tenants with a service-level period constraint.
    pub constrained_fraction: f64,
}

impl Default for CloudFpgaConfig {
    fn default() -> Self {
        CloudFpgaConfig {
            seed: 42,
            tenants: 2,
            kernel_alternatives: 2,
            designs_per_slot: 2,
            host_cpus: 2,
            constrained_fraction: 0.5,
        }
    }
}

impl CloudFpgaConfig {
    /// A small configuration (sub-second differential checks).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        CloudFpgaConfig {
            seed,
            tenants: 2,
            kernel_alternatives: 2,
            designs_per_slot: 1,
            host_cpus: 1,
            constrained_fraction: 0.5,
        }
    }

    /// A mid-size configuration (a busier device).
    #[must_use]
    pub fn medium(seed: u64) -> Self {
        CloudFpgaConfig {
            seed,
            tenants: 3,
            kernel_alternatives: 3,
            designs_per_slot: 2,
            host_cpus: 2,
            constrained_fraction: 0.6,
        }
    }
}

/// Generates a multi-tenant cloud-FPGA specification from `config`.
///
/// Structural guarantees:
///
/// * ingest/egress and the software kernel of every tenant map to every
///   host CPU, so a CPU-only deployment implements each tenant's software
///   path;
/// * accelerated kernel alternatives map only to designs of **their**
///   tenant's slot (at least one mapping each);
/// * period constraints leave headroom above the slowest mapped latency of
///   any single process.
#[must_use]
pub fn cloud_fpga_spec(config: &CloudFpgaConfig) -> SpecificationGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let name = format!("cloud-fpga-{}", config.seed);
    let mut p = ProblemGraph::new(name.clone());

    let tenants_interface = p.add_interface(Scope::Top, "I_tenants");
    let mut software_processes = Vec::new();
    // Per tenant: the accelerated kernel processes (map to slot designs).
    let mut accelerated: Vec<Vec<flexplore_hgraph::VertexId>> = Vec::new();
    for t in 0..config.tenants.max(1) {
        let cluster = p.add_cluster(tenants_interface, format!("tenant{t}"));
        let constrained = rng.random_bool(config.constrained_fraction.clamp(0.0, 1.0));
        let sla = Time::from_ns(rng.random_range(300..=600));
        let ingest = p.add_process_with(
            cluster.into(),
            format!("ingest{t}"),
            ProcessAttrs::new().negligible(),
        );
        software_processes.push(ingest);
        let kernel = p.add_interface(cluster.into(), format!("I_kernel{t}"));
        let in_port = p.add_port(kernel, "in", PortDirection::In);
        let out_port = p.add_port(kernel, "out", PortDirection::Out);
        let mut tenant_accelerated = Vec::new();
        for alt in 0..config.kernel_alternatives.max(1) {
            let c = p.add_cluster(kernel, format!("kernel{t}_{alt}"));
            let v = p.add_process(c.into(), format!("K{t}_{alt}"));
            p.map_port(c, in_port, PortTarget::vertex(v))
                .expect("member");
            p.map_port(c, out_port, PortTarget::vertex(v))
                .expect("member");
            if alt == 0 {
                software_processes.push(v);
            } else {
                tenant_accelerated.push(v);
            }
        }
        accelerated.push(tenant_accelerated);
        p.add_dependence(ingest, (kernel, in_port))
            .expect("same scope");
        let egress_attrs = if constrained {
            ProcessAttrs::new().with_period(sla)
        } else {
            ProcessAttrs::new()
        };
        let egress = p.add_process_with(cluster.into(), format!("egress{t}"), egress_attrs);
        p.add_dependence((kernel, out_port), egress)
            .expect("same scope");
        software_processes.push(egress);
    }

    let mut a = ArchitectureGraph::new(format!("{name}-arch"));
    let pcie = a.add_bus(Scope::Top, "PCIE", Cost::new(25));
    let mut cpus = Vec::new();
    for k in 0..config.host_cpus.max(1) {
        let cpu = a.add_resource(
            Scope::Top,
            format!("VCPU{k}"),
            Cost::new(rng.random_range(80..=160)),
        );
        a.connect(cpu, pcie).expect("same scope");
        cpus.push(cpu);
    }
    // One reconfigurable slot per tenant, each with its own designs.
    let mut slot_designs: Vec<Vec<flexplore_hgraph::VertexId>> = Vec::new();
    for t in 0..config.tenants.max(1) {
        let slot = a.add_interface(Scope::Top, format!("SLOT{t}"));
        a.connect_through(pcie, slot).expect("device link");
        let mut designs = Vec::new();
        for d in 0..config.designs_per_slot.max(1) {
            let design = a
                .add_design(
                    slot,
                    format!("bit{t}_{d}"),
                    format!("ACC{t}_{d}"),
                    Cost::new(rng.random_range(50..=110)),
                )
                .expect("fresh design");
            designs.push(design.design);
        }
        slot_designs.push(designs);
    }

    let mut spec = SpecificationGraph::new(name, p, a);
    for &process in &software_processes {
        for &cpu in &cpus {
            let latency = Time::from_ns(rng.random_range(40..=150));
            spec.add_mapping(process, cpu, latency)
                .expect("valid endpoints");
        }
    }
    for (tenant, kernels) in accelerated.iter().enumerate() {
        let designs = &slot_designs[tenant];
        for &kernel in kernels {
            let mut mapped = false;
            for &design in designs {
                if rng.random_bool(0.6) {
                    let latency = Time::from_ns(rng.random_range(8..=45));
                    spec.add_mapping(kernel, design, latency)
                        .expect("valid endpoints");
                    mapped = true;
                }
            }
            if !mapped {
                spec.add_mapping(kernel, designs[0], Time::from_ns(rng.random_range(8..=45)))
                    .expect("valid endpoints");
            }
        }
    }
    spec.validate()
        .expect("generated model is structurally valid");
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_explore::{allocatable_units, exhaustive_explore, explore, ExploreOptions};
    use flexplore_lint::lint_spec;

    #[test]
    fn generation_is_deterministic() {
        let config = CloudFpgaConfig::default();
        let a = cloud_fpga_spec(&config);
        let b = cloud_fpga_spec(&config);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn generated_specs_are_lint_clean() {
        for seed in 0..5 {
            let spec = cloud_fpga_spec(&CloudFpgaConfig::small(seed));
            let report = lint_spec(&spec);
            assert!(report.is_clean(), "seed {seed}: {}", report.render_text());
        }
    }

    #[test]
    fn tenants_get_one_slot_each() {
        let config = CloudFpgaConfig::default();
        let spec = cloud_fpga_spec(&config);
        assert_eq!(
            spec.architecture().graph().interface_count(),
            config.tenants
        );
    }

    #[test]
    fn unit_count_stays_in_the_flat_scan_comfort_zone() {
        let spec = cloud_fpga_spec(&CloudFpgaConfig::medium(4));
        assert!(allocatable_units(&spec).len() <= 16);
    }

    #[test]
    fn explore_agrees_with_exhaustive() {
        for seed in 0..3 {
            let spec = cloud_fpga_spec(&CloudFpgaConfig::small(seed));
            let fast = explore(&spec, &ExploreOptions::paper()).unwrap();
            let slow = exhaustive_explore(&spec).unwrap();
            assert!(
                fast.front.same_objectives(&slow.front),
                "seed {seed}: {:?} != {:?}",
                fast.front.objectives(),
                slow.front.objectives()
            );
        }
    }
}
