//! The digital TV decoder example (Figs. 1 and 2 of the paper).
//!
//! The guiding example of Sections 2–3: four top-level operations — the
//! authentication process `P_A`, the controller `P_C`, the decryption
//! interface `I_D` (three alternative algorithms) and the uncompression
//! interface `I_U` (two alternatives) — where *"the uncompression process
//! requires input data from the decryption process"*.
//!
//! The architecture (Fig. 2) has a µ-controller, an ASIC `A` and an FPGA,
//! with bus `C1` between µP and FPGA and bus `C2` between µP and ASIC —
//! and, notably, **no** bus between ASIC and FPGA, which makes the paper's
//! infeasible-binding example (decryption on the ASIC, uncompression on the
//! FPGA) unroutable.

use flexplore_hgraph::{ClusterId, InterfaceId, PortDirection, PortTarget, Scope, VertexId};
use flexplore_sched::Time;
use flexplore_spec::{ArchitectureGraph, Cost, ProblemGraph, ProcessAttrs, SpecificationGraph};
use std::collections::BTreeMap;

/// The TV decoder model with name-indexed handles.
#[derive(Debug, Clone)]
pub struct TvDecoder {
    /// The complete specification graph.
    pub spec: SpecificationGraph,
    /// Problem processes by name (`"P_A"`, `"P_D1"`, …).
    pub processes: BTreeMap<String, VertexId>,
    /// Problem clusters by name (`"gamma_D1"`, …).
    pub clusters: BTreeMap<String, ClusterId>,
    /// Problem interfaces by name (`"I_D"`, `"I_U"`).
    pub interfaces: BTreeMap<String, InterfaceId>,
    /// Architecture resources by name (`"uP"`, `"A"`, `"C1"`, `"C2"`,
    /// designs `"D3"`, `"U2"`).
    pub resources: BTreeMap<String, VertexId>,
    /// FPGA design clusters by name.
    pub designs: BTreeMap<String, ClusterId>,
}

impl TvDecoder {
    /// Looks up a process by paper name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not part of the model.
    #[must_use]
    pub fn process(&self, name: &str) -> VertexId {
        self.processes[name]
    }

    /// Looks up a cluster by paper name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not part of the model.
    #[must_use]
    pub fn cluster(&self, name: &str) -> ClusterId {
        self.clusters[name]
    }

    /// Looks up an architecture resource by paper name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not part of the model.
    #[must_use]
    pub fn resource(&self, name: &str) -> VertexId {
        self.resources[name]
    }
}

/// Builds the Fig. 1/Fig. 2 digital TV decoder specification.
///
/// Latencies follow the two values the paper states (`P_U1` on µP: 40 ns,
/// on ASIC: 15 ns) extended with the corresponding Table 1 values for the
/// remaining processes; costs follow the Fig. 2 style (µP 100, ASIC 250,
/// buses 10, FPGA designs 60 — consistent with the Set-Top box
/// derivation).
#[must_use]
pub fn tv_decoder() -> TvDecoder {
    let mut p = ProblemGraph::new("tv-decoder");
    let mut processes = BTreeMap::new();
    let mut clusters = BTreeMap::new();
    let mut interfaces = BTreeMap::new();

    let pa = p.add_process_with(Scope::Top, "P_A", ProcessAttrs::new().negligible());
    let pc = p.add_process_with(Scope::Top, "P_C", ProcessAttrs::new().negligible());
    processes.insert("P_A".to_owned(), pa);
    processes.insert("P_C".to_owned(), pc);

    let i_d = p.add_interface(Scope::Top, "I_D");
    interfaces.insert("I_D".to_owned(), i_d);
    let d_in = p.add_port(i_d, "in", PortDirection::In);
    let d_out = p.add_port(i_d, "out", PortDirection::Out);
    for k in 1..=3 {
        let c = p.add_cluster(i_d, format!("gamma_D{k}"));
        let v = p.add_process(c.into(), format!("P_D{k}"));
        p.map_port(c, d_in, PortTarget::vertex(v)).expect("member");
        p.map_port(c, d_out, PortTarget::vertex(v)).expect("member");
        clusters.insert(format!("gamma_D{k}"), c);
        processes.insert(format!("P_D{k}"), v);
    }
    let i_u = p.add_interface(Scope::Top, "I_U");
    interfaces.insert("I_U".to_owned(), i_u);
    let u_in = p.add_port(i_u, "in", PortDirection::In);
    for k in 1..=2 {
        let c = p.add_cluster(i_u, format!("gamma_U{k}"));
        let v = p.add_process_with(
            c.into(),
            format!("P_U{k}"),
            ProcessAttrs::new().with_period(Time::from_ns(300)),
        );
        p.map_port(c, u_in, PortTarget::vertex(v)).expect("member");
        clusters.insert(format!("gamma_U{k}"), c);
        processes.insert(format!("P_U{k}"), v);
    }
    p.add_dependence(pc, (i_d, d_in)).expect("same scope");
    p.add_dependence((i_d, d_out), (i_u, u_in))
        .expect("same scope");

    let mut a = ArchitectureGraph::new("tv-decoder-arch");
    let mut resources = BTreeMap::new();
    let mut designs = BTreeMap::new();
    let up = a.add_resource(Scope::Top, "uP", Cost::new(100));
    let asic = a.add_resource(Scope::Top, "A", Cost::new(250));
    let c1 = a.add_bus(Scope::Top, "C1", Cost::new(10));
    let c2 = a.add_bus(Scope::Top, "C2", Cost::new(10));
    resources.insert("uP".to_owned(), up);
    resources.insert("A".to_owned(), asic);
    resources.insert("C1".to_owned(), c1);
    resources.insert("C2".to_owned(), c2);
    let fpga = a.add_interface(Scope::Top, "FPGA");
    a.connect(up, c1).expect("same scope");
    a.connect_through(c1, fpga).expect("device link");
    a.connect(up, c2).expect("same scope");
    a.connect(c2, asic).expect("same scope");
    for (name, cost) in [("D3", 60u64), ("U2", 60)] {
        let d = a
            .add_design(fpga, format!("cfg_{name}"), name, Cost::new(cost))
            .expect("fresh design");
        resources.insert(name.to_owned(), d.design);
        designs.insert(name.to_owned(), d.cluster);
    }

    let mut spec = SpecificationGraph::new("tv-decoder", p, a);
    let mapping_table: &[(&str, &str, u64)] = &[
        ("P_A", "uP", 55),
        ("P_C", "uP", 10),
        ("P_D1", "uP", 85),
        ("P_D1", "A", 25),
        ("P_D2", "A", 35),
        ("P_D3", "D3", 63),
        // The paper states these two explicitly (Fig. 2 annotation):
        ("P_U1", "uP", 40),
        ("P_U1", "A", 15),
        ("P_U2", "A", 29),
        ("P_U2", "U2", 59),
    ];
    for (process, resource, ns) in mapping_table {
        spec.add_mapping(
            processes[*process],
            resources[*resource],
            Time::from_ns(*ns),
        )
        .expect("valid endpoints");
    }
    spec.validate().expect("model is structurally valid");

    TvDecoder {
        spec,
        processes,
        clusters,
        interfaces,
        resources,
        designs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_bind::{mode_is_feasible, BindOptions};
    use flexplore_flex::max_flexibility;
    use flexplore_hgraph::Selection;
    use flexplore_spec::{Binding, Mode, ResourceAllocation};
    use std::collections::BTreeSet;

    #[test]
    fn equation_1_leaves() {
        // V_l(G) = {P_A, P_C} ∪ {P_D1, P_D2, P_D3} ∪ {P_U1, P_U2}.
        let tv = tv_decoder();
        let g = tv.spec.problem().graph();
        let leaves: BTreeSet<&str> = g.leaves().map(|v| g.vertex_name(v)).collect();
        assert_eq!(
            leaves,
            BTreeSet::from(["P_A", "P_C", "P_D1", "P_D2", "P_D3", "P_U1", "P_U2"])
        );
    }

    #[test]
    fn decoder_flexibility_is_4() {
        // I_D (3) + I_U (2) - 1 = 4 when everything is activatable.
        let tv = tv_decoder();
        assert_eq!(max_flexibility(tv.spec.problem().graph()), 4);
    }

    #[test]
    fn paper_infeasible_binding_example() {
        // P_D2 on the ASIC and the uncompression on the FPGA (design U2):
        // no bus connects ASIC and FPGA, so no feasible binding exists.
        let tv = tv_decoder();
        let alloc = ResourceAllocation::new()
            .with_vertex(tv.resource("uP"))
            .with_vertex(tv.resource("A"))
            .with_vertex(tv.resource("C1"))
            .with_vertex(tv.resource("C2"))
            .with_cluster(tv.designs["U2"]);
        let eca = Selection::new()
            .with(tv.interfaces["I_D"], tv.cluster("gamma_D2"))
            .with(tv.interfaces["I_U"], tv.cluster("gamma_U2"));
        // Force the pairing by hand-building the binding the paper deems
        // infeasible and checking it violates rule 3.
        let m_d2_a = tv
            .spec
            .mappings_of(tv.process("P_D2"))
            .find(|&m| tv.spec.mapping(m).resource == tv.resource("A"))
            .unwrap();
        let m_u2_fpga = tv
            .spec
            .mappings_of(tv.process("P_U2"))
            .find(|&m| tv.spec.mapping(m).resource == tv.resource("U2"))
            .unwrap();
        let m_pa = tv.spec.mappings_of(tv.process("P_A")).next().unwrap();
        let m_pc = tv.spec.mappings_of(tv.process("P_C")).next().unwrap();
        let binding = Binding::new()
            .with(tv.process("P_D2"), m_d2_a)
            .with(tv.process("P_U2"), m_u2_fpga)
            .with(tv.process("P_A"), m_pa)
            .with(tv.process("P_C"), m_pc);
        let fpga = tv
            .spec
            .architecture()
            .graph()
            .interface_by_name(Scope::Top, "FPGA")
            .unwrap();
        let mode = Mode::new(eca.clone(), Selection::new().with(fpga, tv.designs["U2"]));
        let allocated = alloc.available_vertices(tv.spec.architecture());
        let err = tv
            .spec
            .check_binding(&mode, &allocated, &binding)
            .unwrap_err();
        assert!(matches!(
            err,
            flexplore_spec::BindingViolation::NoCommunicationPath { .. }
        ));
        // The solver instead finds the feasible alternative: U2 on the
        // ASIC (29 ns) colocated with P_D2.
        assert!(mode_is_feasible(
            &tv.spec,
            &alloc,
            &eca,
            &BindOptions::default()
        ));
    }

    #[test]
    fn d3_requires_fpga_configuration() {
        // Executing P_D3 requires the FPGA loaded with design D3.
        let tv = tv_decoder();
        let without_d3 = ResourceAllocation::new()
            .with_vertex(tv.resource("uP"))
            .with_vertex(tv.resource("C1"));
        let eca = Selection::new()
            .with(tv.interfaces["I_D"], tv.cluster("gamma_D3"))
            .with(tv.interfaces["I_U"], tv.cluster("gamma_U1"));
        assert!(!mode_is_feasible(
            &tv.spec,
            &without_d3,
            &eca,
            &BindOptions::default()
        ));
        let with_d3 = without_d3.with_cluster(tv.designs["D3"]);
        assert!(mode_is_feasible(
            &tv.spec,
            &with_d3,
            &eca,
            &BindOptions::default()
        ));
    }

    #[test]
    fn fig2_possible_allocations_start_with_bare_processor() {
        use flexplore_explore::{possible_resource_allocations, AllocationOptions};
        let tv = tv_decoder();
        let (cands, _) =
            possible_resource_allocations(&tv.spec, &AllocationOptions::default()).unwrap();
        // The cheapest possible allocation is {µP} (paper's set A starts
        // with µP).
        let first = &cands[0];
        assert_eq!(first.allocation.display_names(tv.spec.architecture()), "uP");
        assert_eq!(first.cost, Cost::new(100));
        // And every candidate contains the µP (only processor that can run
        // P_A / P_C).
        assert!(cands
            .iter()
            .all(|c| c.allocation.vertices.contains(&tv.resource("uP"))));
    }
}
