//! Seeded generator family: automotive zonal E/E architectures.
//!
//! Modern vehicles consolidate dozens of domain ECUs into a few **zonal
//! controllers** wired to central compute over an Ethernet backbone; ADAS
//! functions then have alternative realizations (camera-only vs. full
//! sensor fusion) whose availability depends on which compute units the
//! platform variant ships. That is exactly the paper's platform-family
//! question — *which allocation of zonal controllers, central compute and
//! accelerators is the cheapest that keeps the functions flexible?* — so
//! the generator produces specifications of that shape:
//!
//! * one top-level interface of **driving functions** (apps), each a
//!   sense → refine → actuate pipeline whose refine stage is an interface
//!   with alternative implementations;
//! * per-zone **I/O concentrator tasks** pinned to their zonal controller,
//!   making every zonal controller mandatory in a feasible allocation (the
//!   vehicle cannot shed a physical zone);
//! * an architecture of zonal controllers and central compute units on an
//!   Ethernet backbone, plus an optional ADAS accelerator.
//!
//! The generator is fully deterministic: equal [`AutomotiveConfig`]s
//! (including the seed) produce byte-identical specifications.

use flexplore_hgraph::{PortDirection, PortTarget, Scope};
use flexplore_sched::Time;
use flexplore_spec::{ArchitectureGraph, Cost, ProblemGraph, ProcessAttrs, SpecificationGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a generated zonal E/E specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutomotiveConfig {
    /// RNG seed; equal configs produce identical specifications.
    pub seed: u64,
    /// Physical zones (each contributes one mandatory zonal controller and
    /// one pinned I/O concentrator task).
    pub zones: usize,
    /// Driving functions (ADAS apps), each a pipeline with one
    /// alternative-implementation stage.
    pub functions: usize,
    /// Alternative implementations per function stage (camera-only,
    /// radar+camera fusion, …).
    pub alternatives: usize,
    /// Central compute units (can run every function process).
    pub central_units: usize,
    /// Generate a dedicated ADAS accelerator that runs random fusion
    /// alternatives faster.
    pub accelerator: bool,
    /// Fraction of functions with an end-to-end period constraint.
    pub constrained_fraction: f64,
}

impl Default for AutomotiveConfig {
    fn default() -> Self {
        AutomotiveConfig {
            seed: 42,
            zones: 2,
            functions: 3,
            alternatives: 2,
            central_units: 2,
            accelerator: true,
            constrained_fraction: 0.5,
        }
    }
}

impl AutomotiveConfig {
    /// A small configuration (sub-second differential checks).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        AutomotiveConfig {
            seed,
            zones: 2,
            functions: 2,
            alternatives: 2,
            central_units: 1,
            accelerator: true,
            constrained_fraction: 0.5,
        }
    }

    /// A mid-size configuration (a compact car's worth of zones).
    #[must_use]
    pub fn medium(seed: u64) -> Self {
        AutomotiveConfig {
            seed,
            zones: 3,
            functions: 4,
            alternatives: 3,
            central_units: 2,
            accelerator: true,
            constrained_fraction: 0.6,
        }
    }
}

/// Generates a zonal E/E specification from `config`.
///
/// Structural guarantees (so lint stays clean and exploration has work):
///
/// * every function process maps to every central compute unit, so a
///   central-compute-only platform implements at least one alternative per
///   stage;
/// * zone I/O tasks map **only** to their zonal controller, making every
///   zonal controller a mandatory allocation unit;
/// * the accelerator (when generated) carries faster mappings for a random
///   subset of the alternatives;
/// * period constraints leave headroom above the slowest mapped latency of
///   any single process, so no `F011` lint finding can arise.
#[must_use]
pub fn automotive_spec(config: &AutomotiveConfig) -> SpecificationGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let name = format!("automotive-{}", config.seed);
    let mut p = ProblemGraph::new(name.clone());

    let functions_interface = p.add_interface(Scope::Top, "I_functions");
    let mut function_processes = Vec::new();
    let mut fusion_processes = Vec::new();
    for f in 0..config.functions {
        let cluster = p.add_cluster(functions_interface, format!("fn{f}"));
        let constrained = rng.random_bool(config.constrained_fraction.clamp(0.0, 1.0));
        // Sense → refine (alternatives) → actuate; the period leaves room
        // for the slowest central-compute latency drawn below (≤ 120 ns).
        let period = Time::from_ns(rng.random_range(250..=500));
        let sense = p.add_process_with(
            cluster.into(),
            format!("sense{f}"),
            ProcessAttrs::new().negligible(),
        );
        function_processes.push(sense);
        let refine = p.add_interface(cluster.into(), format!("I_refine{f}"));
        let in_port = p.add_port(refine, "in", PortDirection::In);
        let out_port = p.add_port(refine, "out", PortDirection::Out);
        for alt in 0..config.alternatives.max(1) {
            let c = p.add_cluster(refine, format!("fusion{f}_{alt}"));
            let v = p.add_process(c.into(), format!("F{f}_{alt}"));
            p.map_port(c, in_port, PortTarget::vertex(v))
                .expect("member");
            p.map_port(c, out_port, PortTarget::vertex(v))
                .expect("member");
            function_processes.push(v);
            fusion_processes.push(v);
        }
        p.add_dependence(sense, (refine, in_port))
            .expect("same scope");
        let actuate_attrs = if constrained {
            ProcessAttrs::new().with_period(period)
        } else {
            ProcessAttrs::new()
        };
        let actuate = p.add_process_with(cluster.into(), format!("actuate{f}"), actuate_attrs);
        p.add_dependence((refine, out_port), actuate)
            .expect("same scope");
        function_processes.push(actuate);
    }
    // One always-active I/O concentrator per zone, pinned below.
    let zone_tasks: Vec<_> = (0..config.zones)
        .map(|z| {
            p.add_process_with(
                Scope::Top,
                format!("zone_io{z}"),
                ProcessAttrs::new().negligible(),
            )
        })
        .collect();

    let mut a = ArchitectureGraph::new(format!("{name}-arch"));
    let backbone = a.add_bus(Scope::Top, "ETH", Cost::new(15));
    let mut central = Vec::new();
    for k in 0..config.central_units.max(1) {
        let ccu = a.add_resource(
            Scope::Top,
            format!("CCU{k}"),
            Cost::new(rng.random_range(180..=320)),
        );
        a.connect(ccu, backbone).expect("same scope");
        central.push(ccu);
    }
    let mut zonal = Vec::new();
    for z in 0..config.zones {
        let ecu = a.add_resource(
            Scope::Top,
            format!("ZC{z}"),
            Cost::new(rng.random_range(60..=120)),
        );
        a.connect(backbone, ecu).expect("same scope");
        zonal.push(ecu);
    }
    let accelerator = config.accelerator.then(|| {
        let acc = a.add_resource(
            Scope::Top,
            "ADAS_ACC",
            Cost::new(rng.random_range(200..=400)),
        );
        a.connect(backbone, acc).expect("same scope");
        acc
    });

    let mut spec = SpecificationGraph::new(name, p, a);
    for &process in &function_processes {
        for &ccu in &central {
            let latency = Time::from_ns(rng.random_range(30..=120));
            spec.add_mapping(process, ccu, latency)
                .expect("valid endpoints");
        }
    }
    if let Some(acc) = accelerator {
        for &fusion in &fusion_processes {
            if rng.random_bool(0.5) {
                let latency = Time::from_ns(rng.random_range(5..=40));
                spec.add_mapping(fusion, acc, latency)
                    .expect("valid endpoints");
            }
        }
    }
    for (task, &ecu) in zone_tasks.iter().zip(&zonal) {
        let latency = Time::from_ns(rng.random_range(5..=30));
        spec.add_mapping(*task, ecu, latency)
            .expect("valid endpoints");
    }
    spec.validate()
        .expect("generated model is structurally valid");
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_explore::{allocatable_units, exhaustive_explore, explore, ExploreOptions};
    use flexplore_lint::lint_spec;

    #[test]
    fn generation_is_deterministic() {
        let config = AutomotiveConfig::default();
        let a = automotive_spec(&config);
        let b = automotive_spec(&config);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn generated_specs_are_lint_clean() {
        for seed in 0..5 {
            let spec = automotive_spec(&AutomotiveConfig::small(seed));
            let report = lint_spec(&spec);
            assert!(report.is_clean(), "seed {seed}: {}", report.render_text());
        }
    }

    #[test]
    fn zonal_controllers_are_mandatory() {
        let config = AutomotiveConfig::small(9);
        let spec = automotive_spec(&config);
        let result = explore(&spec, &ExploreOptions::paper()).unwrap();
        assert!(!result.front.is_empty());
        // Every Pareto point allocates every zonal controller.
        for z in 0..config.zones {
            let zc = spec
                .architecture()
                .graph()
                .vertex_by_name(Scope::Top, &format!("ZC{z}"))
                .unwrap();
            assert!(result.front.iter().all(|pt| {
                pt.implementation
                    .as_ref()
                    .is_some_and(|i| i.allocation.vertices.contains(&zc))
            }));
        }
    }

    #[test]
    fn unit_count_stays_in_the_flat_scan_comfort_zone() {
        let spec = automotive_spec(&AutomotiveConfig::medium(4));
        assert!(allocatable_units(&spec).len() <= 16);
    }

    #[test]
    fn explore_agrees_with_exhaustive() {
        for seed in 0..3 {
            let spec = automotive_spec(&AutomotiveConfig::small(seed));
            let fast = explore(&spec, &ExploreOptions::paper()).unwrap();
            let slow = exhaustive_explore(&spec).unwrap();
            assert!(
                fast.front.same_objectives(&slow.front),
                "seed {seed}: {:?} != {:?}",
                fast.front.objectives(),
                slow.front.objectives()
            );
        }
    }
}
