//! Static scheduling of bound modes — the paper's main future-work item.
//!
//! The paper validates timing with a utilization *estimate* (the 69 %
//! limit) and explicitly defers exact scheduling: *"In our future work,
//! scheduling will be the main issue of concern."* This crate provides that
//! missing piece for the time-triggered, run-once-per-period execution
//! model of the case study: non-preemptive critical-path **list
//! scheduling** of a flattened, bound mode, with optional uniform
//! communication delays, exact period validation, and textual Gantt
//! rendering.
//!
//! # Examples
//!
//! Scheduling the Set-Top box game console on µP1 and checking the 240 ns
//! output period exactly:
//!
//! ```
//! use flexplore_bind::{solve_mode, BindOptions, CommGraph};
//! use flexplore_models::set_top_box;
//! use flexplore_schedule::{schedule_mode, CommDelay};
//! use flexplore_hgraph::Selection;
//! use flexplore_spec::ResourceAllocation;
//!
//! let stb = set_top_box();
//! let allocation = ResourceAllocation::new().with_vertex(stb.resource("uP1"));
//! let available = allocation.available_vertices(stb.spec.architecture());
//! let comm = CommGraph::new(stb.spec.architecture(), &available);
//! let eca = Selection::new()
//!     .with(stb.interfaces["I_app"], stb.cluster("gamma_G"))
//!     .with(stb.interfaces["I_G"], stb.cluster("gamma_G1"));
//! let (mode, _) = solve_mode(&stb.spec, &allocation, &comm, &eca, &BindOptions::default());
//! let mode = mode.expect("feasible on uP1");
//!
//! let schedule = schedule_mode(&stb.spec, &eca, &mode.binding, CommDelay::Zero).unwrap();
//! // Serial on one processor: 25 (ctrl) + 75 (core) + 70 (accel) = 170 ns.
//! assert_eq!(schedule.makespan().as_ns(), 170);
//! assert!(schedule.meets_periods(&stb.spec));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod list;

pub use error::ScheduleError;
pub use list::{schedule_flat, schedule_mode, CommDelay, ScheduleEntry, StaticSchedule};
