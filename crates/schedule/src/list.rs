//! Critical-path list scheduling of one bound mode.
//!
//! The scheduler produces a *static*, non-preemptive schedule: every
//! activated process runs exactly once, resources execute one process at a
//! time, and a process may start once all of its producers have finished
//! (plus a configurable communication delay when producer and consumer sit
//! on different resources; the paper's case study uses zero — *"No
//! latencies for external communications are taken into account"*).
//!
//! Priorities follow the classic critical-path heuristic: among ready
//! processes, the one with the longest remaining path (sum of latencies to
//! the farthest sink) is dispatched first.

use crate::error::ScheduleError;
use flexplore_hgraph::{FlatGraph, Selection, VertexId};
use flexplore_sched::Time;
use flexplore_spec::{Binding, SpecificationGraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Communication-delay model: the time to move data between two distinct
/// resources. The paper's evaluation uses [`CommDelay::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CommDelay {
    /// Cross-resource communication is free (the paper's assumption).
    #[default]
    Zero,
    /// Every cross-resource dependence costs a fixed delay.
    Uniform(Time),
}

impl CommDelay {
    fn between(self, from_resource: VertexId, to_resource: VertexId) -> Time {
        if from_resource == to_resource {
            return Time::ZERO;
        }
        match self {
            CommDelay::Zero => Time::ZERO,
            CommDelay::Uniform(t) => t,
        }
    }
}

/// One scheduled process execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The scheduled process.
    pub process: VertexId,
    /// The resource it executes on.
    pub resource: VertexId,
    /// Start time.
    pub start: Time,
    /// Finish time (`start + latency`).
    pub finish: Time,
}

/// A complete static schedule of one mode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticSchedule {
    entries: Vec<ScheduleEntry>,
    makespan: Time,
}

impl StaticSchedule {
    /// The scheduled executions, ordered by start time (ties by process
    /// id).
    #[must_use]
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// The completion time of the last process.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// The entry of one process, if scheduled.
    #[must_use]
    pub fn entry(&self, process: VertexId) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.process == process)
    }

    /// Checks the paper's timing constraints *exactly*: every
    /// timing-constrained process must finish within its minimal output
    /// period. (Compare with the 69 % utilization estimate the paper's
    /// exploration uses; this is the sharper test the paper defers to
    /// future work.)
    #[must_use]
    pub fn meets_periods(&self, spec: &SpecificationGraph) -> bool {
        self.entries.iter().all(|e| {
            spec.problem()
                .period(e.process)
                .is_none_or(|period| e.finish <= period)
        })
    }

    /// The *initiation interval* bound for pipelined execution: the
    /// largest total busy time of any single resource.
    ///
    /// The paper distinguishes throughput ("frames per second") from
    /// latency; for a pipelined implementation, a new iteration can start
    /// every `pipeline_interval()` time units even though one iteration
    /// takes `makespan()` end to end. A period constraint `P` is
    /// throughput-feasible iff `pipeline_interval() ≤ P`.
    #[must_use]
    pub fn pipeline_interval(&self) -> Time {
        let mut busy: BTreeMap<VertexId, Time> = BTreeMap::new();
        for e in &self.entries {
            let slot = busy.entry(e.resource).or_insert(Time::ZERO);
            *slot += e.finish - e.start;
        }
        busy.into_values().max().unwrap_or(Time::ZERO)
    }

    /// Throughput test for pipelined execution: every timing-constrained
    /// process's period must be at least the initiation interval.
    ///
    /// Weaker than [`meets_periods`](Self::meets_periods) (which also
    /// bounds end-to-end latency) whenever the pipeline spans several
    /// resources.
    #[must_use]
    pub fn meets_throughput(&self, spec: &SpecificationGraph) -> bool {
        let interval = self.pipeline_interval();
        self.entries.iter().all(|e| {
            spec.problem()
                .period(e.process)
                .is_none_or(|period| interval <= period)
        })
    }

    /// Renders a textual Gantt chart, one row per resource.
    ///
    /// `name_of` resolves display names (pass closures over the
    /// specification's accessors).
    #[must_use]
    pub fn gantt(
        &self,
        resource_name: impl Fn(VertexId) -> String,
        process_name: impl Fn(VertexId) -> String,
    ) -> String {
        let mut rows: BTreeMap<VertexId, Vec<&ScheduleEntry>> = BTreeMap::new();
        for e in &self.entries {
            rows.entry(e.resource).or_default().push(e);
        }
        let mut out = String::new();
        for (resource, entries) in rows {
            out.push_str(&format!("{:<6} |", resource_name(resource)));
            for e in entries {
                out.push_str(&format!(
                    " {}[{}..{}]",
                    process_name(e.process),
                    e.start.as_ns(),
                    e.finish.as_ns()
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!("makespan: {}\n", self.makespan));
        out
    }
}

/// Schedules one bound mode with critical-path list scheduling.
///
/// # Errors
///
/// Returns [`ScheduleError::Unbound`] if an activated process has no
/// binding entry, [`ScheduleError::CyclicDependences`] if the flattened
/// problem graph is not a partial order, and propagates flattening errors
/// as [`ScheduleError::Flatten`].
pub fn schedule_mode(
    spec: &SpecificationGraph,
    eca: &Selection,
    binding: &Binding,
    comm: CommDelay,
) -> Result<StaticSchedule, ScheduleError> {
    let flat = spec
        .problem()
        .flatten(eca)
        .map_err(ScheduleError::Flatten)?;
    schedule_flat(spec, &flat, binding, comm)
}

/// Variant of [`schedule_mode`] for callers that already flattened the
/// problem graph.
///
/// # Errors
///
/// See [`schedule_mode`] — plus [`ScheduleError::ForeignEndpoint`] when a
/// hand-constructed `flat` contains an edge referencing a vertex that is
/// not one of its member vertices ([`flexplore_hgraph::FlatGraph`] fields
/// are public and deserializable; flattening never produces such a graph).
pub fn schedule_flat(
    spec: &SpecificationGraph,
    flat: &FlatGraph,
    binding: &Binding,
    comm: CommDelay,
) -> Result<StaticSchedule, ScheduleError> {
    // Reject malformed inputs up front so the maps below are total over
    // every endpoint the scheduling loops touch.
    for e in &flat.edges {
        for endpoint in [e.from, e.to] {
            if !flat.vertices.contains(&endpoint) {
                return Err(ScheduleError::ForeignEndpoint {
                    edge: e.id,
                    vertex: endpoint,
                });
            }
        }
    }

    // Latency and resource per process.
    let mut latency: BTreeMap<VertexId, Time> = BTreeMap::new();
    let mut resource: BTreeMap<VertexId, VertexId> = BTreeMap::new();
    for &v in &flat.vertices {
        let Some(m) = binding.mapping_for(v) else {
            return Err(ScheduleError::Unbound { process: v });
        };
        let mapping = spec.mapping(m);
        latency.insert(v, mapping.latency);
        resource.insert(v, mapping.resource);
    }

    let order = flat
        .topological_order()
        .ok_or(ScheduleError::CyclicDependences)?;

    // Critical-path priority: longest latency-weighted path to any sink.
    let mut priority: BTreeMap<VertexId, Time> = BTreeMap::new();
    for &v in order.iter().rev() {
        let down: Time = flat
            .successors(v)
            .map(|s| priority[&s])
            .max()
            .unwrap_or(Time::ZERO);
        priority.insert(v, latency[&v] + down);
    }

    // Event-driven list scheduling.
    let mut indegree: BTreeMap<VertexId, usize> = flat.vertices.iter().map(|&v| (v, 0)).collect();
    for e in &flat.edges {
        *indegree.entry(e.to).or_insert(0) += 1;
    }
    let mut ready_at: BTreeMap<VertexId, Time> = BTreeMap::new();
    let mut ready: Vec<VertexId> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&v, _)| {
            ready_at.insert(v, Time::ZERO);
            v
        })
        .collect();
    let mut resource_free: BTreeMap<VertexId, Time> = BTreeMap::new();
    let mut entries: Vec<ScheduleEntry> = Vec::with_capacity(flat.vertices.len());
    let mut finish_time: BTreeMap<VertexId, Time> = BTreeMap::new();

    while !ready.is_empty() {
        // Dispatch the ready process with the highest critical-path
        // priority (ties by earliest data-ready time, then id for
        // determinism).
        ready.sort_by_key(|&v| (std::cmp::Reverse(priority[&v]), ready_at[&v], v));
        let v = ready.remove(0);
        let r = resource[&v];
        let start = ready_at[&v].max(resource_free.get(&r).copied().unwrap_or(Time::ZERO));
        let finish = start + latency[&v];
        resource_free.insert(r, finish);
        finish_time.insert(v, finish);
        entries.push(ScheduleEntry {
            process: v,
            resource: r,
            start,
            finish,
        });
        for e in flat.edges.iter().filter(|e| e.from == v) {
            let arrival = finish + comm.between(r, resource[&e.to]);
            let slot = ready_at.entry(e.to).or_insert(Time::ZERO);
            *slot = (*slot).max(arrival);
            if let Some(d) = indegree.get_mut(&e.to) {
                *d -= 1;
                if *d == 0 {
                    ready.push(e.to);
                }
            }
        }
    }

    if entries.len() != flat.vertices.len() {
        return Err(ScheduleError::CyclicDependences);
    }
    entries.sort_by_key(|e| (e.start, e.process));
    let makespan = entries.iter().map(|e| e.finish).max().unwrap_or(Time::ZERO);
    Ok(StaticSchedule { entries, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_hgraph::Scope;
    use flexplore_spec::{ArchitectureGraph, Cost, ProblemGraph};

    /// Diamond: a -> {b, c} -> d. a,d on r1; b on r1; c on r2.
    fn diamond() -> (SpecificationGraph, [VertexId; 4], Binding) {
        let mut p = ProblemGraph::new("p");
        let a = p.add_process(Scope::Top, "a");
        let b = p.add_process(Scope::Top, "b");
        let c = p.add_process(Scope::Top, "c");
        let d = p.add_process(Scope::Top, "d");
        p.add_dependence(a, b).unwrap();
        p.add_dependence(a, c).unwrap();
        p.add_dependence(b, d).unwrap();
        p.add_dependence(c, d).unwrap();
        let mut arch = ArchitectureGraph::new("a");
        let r1 = arch.add_resource(Scope::Top, "r1", Cost::new(1));
        let r2 = arch.add_resource(Scope::Top, "r2", Cost::new(1));
        let bus = arch.add_bus(Scope::Top, "bus", Cost::new(1));
        arch.connect(r1, bus).unwrap();
        arch.connect(bus, r2).unwrap();
        let mut spec = SpecificationGraph::new("s", p, arch);
        let binding: Binding = [
            (a, spec.add_mapping(a, r1, Time::from_ns(10)).unwrap()),
            (b, spec.add_mapping(b, r1, Time::from_ns(20)).unwrap()),
            (c, spec.add_mapping(c, r2, Time::from_ns(30)).unwrap()),
            (d, spec.add_mapping(d, r1, Time::from_ns(5)).unwrap()),
        ]
        .into_iter()
        .collect();
        (spec, [a, b, c, d], binding)
    }

    #[test]
    fn diamond_schedules_with_parallel_branches() {
        let (spec, [a, b, c, d], binding) = diamond();
        let s = schedule_mode(&spec, &Selection::new(), &binding, CommDelay::Zero).unwrap();
        // a: [0,10]; b on r1 [10,30]; c on r2 [10,40] in parallel;
        // d waits for both: [40,45].
        assert_eq!(s.entry(a).unwrap().start, Time::ZERO);
        assert_eq!(s.entry(b).unwrap().start, Time::from_ns(10));
        assert_eq!(s.entry(c).unwrap().start, Time::from_ns(10));
        assert_eq!(s.entry(d).unwrap().start, Time::from_ns(40));
        assert_eq!(s.makespan(), Time::from_ns(45));
    }

    #[test]
    fn uniform_comm_delay_shifts_cross_resource_consumers() {
        let (spec, [_, _, c, d], binding) = diamond();
        let s = schedule_mode(
            &spec,
            &Selection::new(),
            &binding,
            CommDelay::Uniform(Time::from_ns(7)),
        )
        .unwrap();
        // a->c crosses r1->r2 (+7): c starts at 17, ends 47; c->d crosses
        // back (+7): d starts max(30+0 /* b same res */, 47+7) = 54.
        assert_eq!(s.entry(c).unwrap().start, Time::from_ns(17));
        assert_eq!(s.entry(d).unwrap().start, Time::from_ns(54));
        assert_eq!(s.makespan(), Time::from_ns(59));
    }

    #[test]
    fn resources_never_overlap() {
        let (spec, _, binding) = diamond();
        let s = schedule_mode(&spec, &Selection::new(), &binding, CommDelay::Zero).unwrap();
        let mut by_resource: BTreeMap<VertexId, Vec<&ScheduleEntry>> = BTreeMap::new();
        for e in s.entries() {
            by_resource.entry(e.resource).or_default().push(e);
        }
        for entries in by_resource.values() {
            for (x, y) in entries.iter().zip(entries.iter().skip(1)) {
                assert!(x.finish <= y.start, "overlap on a resource");
            }
        }
    }

    #[test]
    fn precedence_is_respected() {
        let (spec, _, binding) = diamond();
        let flat = spec.problem().flatten(&Selection::new()).unwrap();
        let s = schedule_flat(&spec, &flat, &binding, CommDelay::Zero).unwrap();
        for e in &flat.edges {
            assert!(s.entry(e.from).unwrap().finish <= s.entry(e.to).unwrap().start);
        }
    }

    #[test]
    fn unbound_process_is_reported() {
        let (spec, [a, _, _, _], binding) = diamond();
        let partial: Binding = binding.iter().filter(|(p, _)| *p != a).collect();
        let err = schedule_mode(&spec, &Selection::new(), &partial, CommDelay::Zero).unwrap_err();
        assert_eq!(err, ScheduleError::Unbound { process: a });
    }

    #[test]
    fn foreign_edge_endpoints_are_a_typed_error() {
        use flexplore_hgraph::{FlatEdge, FlatGraph};
        let (spec, [a, b, _, d], binding) = diamond();
        let flat = spec.problem().flatten(&Selection::new()).unwrap();
        let edge_id = flat.edges[0].id;
        // An edge pointing at a vertex the flat graph does not contain:
        // reachable through the public/deserializable FlatGraph fields.
        let malformed = FlatGraph {
            vertices: vec![a, b],
            edges: vec![FlatEdge {
                id: edge_id,
                from: a,
                to: d,
            }],
        };
        let err = schedule_flat(&spec, &malformed, &binding, CommDelay::Zero).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::ForeignEndpoint {
                edge: edge_id,
                vertex: d
            }
        );
        assert!(err.to_string().contains("not a vertex"));
    }

    #[test]
    fn cyclic_dependences_are_reported() {
        let mut p = ProblemGraph::new("p");
        let a = p.add_process(Scope::Top, "a");
        let b = p.add_process(Scope::Top, "b");
        p.add_dependence(a, b).unwrap();
        p.add_dependence(b, a).unwrap();
        let mut arch = ArchitectureGraph::new("a");
        let r = arch.add_resource(Scope::Top, "r", Cost::new(1));
        let mut spec = SpecificationGraph::new("s", p, arch);
        let binding: Binding = [
            (a, spec.add_mapping(a, r, Time::from_ns(1)).unwrap()),
            (b, spec.add_mapping(b, r, Time::from_ns(1)).unwrap()),
        ]
        .into_iter()
        .collect();
        let err = schedule_mode(&spec, &Selection::new(), &binding, CommDelay::Zero).unwrap_err();
        assert_eq!(err, ScheduleError::CyclicDependences);
    }

    #[test]
    fn gantt_renders_every_resource_row() {
        let (spec, _, binding) = diamond();
        let s = schedule_mode(&spec, &Selection::new(), &binding, CommDelay::Zero).unwrap();
        let text = s.gantt(
            |r| spec.architecture().resource_name(r).to_owned(),
            |p| spec.problem().process_name(p).to_owned(),
        );
        assert!(text.contains("r1"));
        assert!(text.contains("r2"));
        assert!(text.contains("makespan: 45ns"));
    }

    #[test]
    fn meets_periods_checks_constrained_sinks() {
        let (mut spec, [_, _, _, d], binding) = diamond();
        // Makespan is 45: a 50 ns period passes, a 40 ns period fails.
        spec.problem_mut().set_period(d, Time::from_ns(50));
        let s = schedule_mode(&spec, &Selection::new(), &binding, CommDelay::Zero).unwrap();
        assert!(s.meets_periods(&spec));
        spec.problem_mut().set_period(d, Time::from_ns(40));
        assert!(!s.meets_periods(&spec));
    }
    #[test]
    fn pipeline_interval_is_per_resource_busy_time() {
        let (spec, _, binding) = diamond();
        let s = schedule_mode(&spec, &Selection::new(), &binding, CommDelay::Zero).unwrap();
        // r1 runs a(10)+b(20)+d(5)=35; r2 runs c(30): interval = 35.
        assert_eq!(s.pipeline_interval(), Time::from_ns(35));
        assert!(s.pipeline_interval() <= s.makespan());
    }

    #[test]
    fn throughput_can_pass_where_latency_fails() {
        // Makespan 45 but interval 35: a 40 ns period fails the latency
        // test yet passes the throughput test (pipelined execution).
        let (mut spec, [_, _, _, d], binding) = diamond();
        spec.problem_mut().set_period(d, Time::from_ns(40));
        let s = schedule_mode(&spec, &Selection::new(), &binding, CommDelay::Zero).unwrap();
        assert!(!s.meets_periods(&spec));
        assert!(s.meets_throughput(&spec));
        // Tighter than the busiest resource: both fail.
        spec.problem_mut().set_period(d, Time::from_ns(30));
        assert!(!s.meets_throughput(&spec));
    }
}
