//! Error type of the static scheduler.

use flexplore_hgraph::{EdgeId, HgraphError, VertexId};
use std::error::Error;
use std::fmt;

/// Error returned by the static scheduling entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// An activated process has no binding entry.
    Unbound {
        /// The unbound process.
        process: VertexId,
    },
    /// The flattened problem graph contains a dependence cycle; the paper
    /// requires dependences to form a partial order.
    CyclicDependences,
    /// The problem graph could not be flattened under the given selection.
    Flatten(HgraphError),
    /// An edge of the flattened graph references a vertex that is not one
    /// of its member vertices. Only reachable with hand-constructed (or
    /// deserialized) [`flexplore_hgraph::FlatGraph`] values — flattening a
    /// hierarchical graph always produces well-formed output.
    ForeignEndpoint {
        /// The offending edge (id in the originating hierarchical graph).
        edge: EdgeId,
        /// The endpoint that is not a member vertex.
        vertex: VertexId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unbound { process } => {
                write!(f, "process {process} is not bound to any resource")
            }
            ScheduleError::CyclicDependences => {
                write!(f, "dependences contain a cycle; no partial order exists")
            }
            ScheduleError::Flatten(e) => write!(f, "flattening: {e}"),
            ScheduleError::ForeignEndpoint { edge, vertex } => write!(
                f,
                "edge {edge} references {vertex}, which is not a vertex of the flattened graph"
            ),
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Flatten(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ScheduleError::Unbound {
            process: VertexId::from_index(2),
        };
        assert!(e.to_string().contains("v2"));
        assert!(e.source().is_none());
        assert!(ScheduleError::CyclicDependences
            .to_string()
            .contains("cycle"));
        let wrapped = ScheduleError::Flatten(HgraphError::SelectionMissing {
            interface: flexplore_hgraph::InterfaceId::from_index(0),
        });
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ScheduleError>();
    }
}
