//! The compiled specification context: immutable, dense side tables built
//! **once** per [`SpecificationGraph`] and shared read-only by every
//! candidate design point of an exploration.
//!
//! The hot loop of the EXPLORE algorithm (Section 4 of the paper) asks the
//! same structural questions for every candidate allocation: which mapping
//! edges leave a process, which resources it can reach, which leaves a
//! design cluster contributes, what a cluster costs, how architecture links
//! resolve through device ports, and what the flattened problem graph and
//! inherited periods of an elementary cluster-activation look like. All of
//! these are functions of the specification alone — [`CompiledSpec`]
//! answers them from `Vec` side tables indexed by the dense arena ids
//! (see `Id::index()`), replacing per-candidate `BTreeMap`/`BTreeSet`
//! construction and repeated graph walks.
//!
//! Invariants (relied on by `flexplore-flex`, `flexplore-bind` and
//! `flexplore-explore` for bit-identical results vs. the uncompiled path):
//!
//! * `mappings_of(v)` lists the mapping edges of `v` sorted by latency with
//!   a **stable** sort, so filtering it by resource availability yields the
//!   same candidate order the binding solver derived on the fly.
//! * `reachable_resources(v)` is the sorted, deduplicated image of
//!   `SpecificationGraph::reachable_resources` (a `BTreeSet` iterates
//!   sorted, so iteration order matches).
//! * `arch_edge_endpoints()` resolves every architecture edge exactly like
//!   the communication-graph construction: a plain vertex denotes itself, a
//!   device interface denotes every design leaf of every cluster, in
//!   cluster/leaf order.
//! * [`CompiledActivation::periods`] equals the inherited-period fixed
//!   point of the binding layer, re-indexed densely by `VertexId::index()`.
//!
//! `CompiledSpec` holds only shared references and owned immutable data, so
//! it is `Sync` and can be borrowed concurrently by worker threads.

use crate::attrs::{Cost, ResourceKind};
use crate::spec::{MappingId, ResourceAllocation, SpecificationGraph};
use crate::unitmask::{UnitMask, MAX_UNITS};
use flexplore_hgraph::{ClusterId, FlatGraph, HgraphError, NodeRef, Selection, VertexId};
use flexplore_sched::Time;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Upper bound on the number of elementary cluster-activations that are
/// eagerly flattened by [`CompiledSpec::with_activation_cache`]; larger
/// specifications fall back to on-demand compilation per activation.
const MAX_CACHED_ACTIVATIONS: u128 = 4096;

/// One allocatable unit: a top-level architecture resource or a whole
/// design cluster of a reconfigurable device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Unit {
    /// A top-level resource (functional or communication).
    Vertex(VertexId),
    /// A design cluster of a reconfigurable device.
    Cluster(ClusterId),
}

/// Returns the allocatable units of a specification in their canonical
/// order: top-level architecture vertices first, then all design clusters.
/// Every mask-addressed API (the enumerators, the evolutionary genotypes,
/// the static lattice analysis) indexes this universe.
#[must_use]
pub fn allocatable_units(spec: &SpecificationGraph) -> Vec<Unit> {
    let graph = spec.architecture().graph();
    let mut units: Vec<Unit> = graph
        .vertices_in(flexplore_hgraph::Scope::Top)
        .map(Unit::Vertex)
        .collect();
    units.extend(graph.cluster_ids().map(Unit::Cluster));
    units
}

/// Expands a unit subset mask over its unit universe into the
/// [`ResourceAllocation`] it denotes: bit `k` of `mask` allocates
/// `units[k]`. The shared decode step between the enumerators, the
/// evolutionary genotypes and mask-addressed implement entry points.
///
/// # Panics
///
/// Panics when `mask` has a bit set at or beyond `units.len()`.
#[must_use]
pub fn allocation_from_units(units: &[Unit], mask: UnitMask) -> ResourceAllocation {
    let mut allocation = ResourceAllocation::new();
    for k in mask.iter_ones() {
        match units[k] {
            Unit::Vertex(v) => {
                allocation.vertices.insert(v);
            }
            Unit::Cluster(c) => {
                allocation.clusters.insert(c);
            }
        }
    }
    allocation
}

/// Bitmask-compiled side tables over a fixed unit universe: every
/// structural question the allocation lattice search asks per subset
/// (coverage, bus neighborhood, unusability, cost) becomes an AND/POPCNT
/// over [`UnitMask`]s whose bit `k` stands for `units[k]`.
///
/// Built once per enumeration by [`CompiledSpec::unit_masks`]; valid for at
/// most [`MAX_UNITS`] units (the enumeration layer rejects more before
/// compiling).
#[derive(Debug, Clone)]
pub struct UnitMasks {
    /// Number of units (occupied low bits of every mask).
    unit_count: usize,
    /// Per problem vertex (by `VertexId::index()`): the units contributing
    /// at least one resource the vertex can be mapped onto.
    coverage: Vec<UnitMask>,
    /// Per unit: the units a communication unit can link (empty for
    /// functional units).
    neighbors: Vec<UnitMask>,
    /// Units that are top-level communication resources.
    comm: UnitMask,
    /// Units that cannot serve any mapping: functional vertices targeted by
    /// no mapping edge, and clusters whose leaves are all untargeted.
    unusable: UnitMask,
    /// Units contributing at least one mapping-target resource — the only
    /// bits the flexibility estimate can depend on.
    estimate_relevant: UnitMask,
    /// Per unit: its allocation cost.
    costs: Vec<Cost>,
}

impl UnitMasks {
    /// Number of units (every mask uses exactly the low `unit_count` bits).
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.unit_count
    }

    /// The units that can implement problem vertex `v` (empty for unknown
    /// ids, matching an empty reachable-resource list).
    #[must_use]
    pub fn coverage(&self, v: VertexId) -> UnitMask {
        self.coverage
            .get(v.index())
            .copied()
            .unwrap_or(UnitMask::empty())
    }

    /// The potential neighbor units of unit `k` (nonempty only for
    /// communication units).
    #[must_use]
    pub fn neighbors(&self, k: usize) -> UnitMask {
        self.neighbors[k]
    }

    /// Mask of top-level communication units.
    #[must_use]
    pub fn comm_mask(&self) -> UnitMask {
        self.comm
    }

    /// Mask of units no mapping edge can use.
    #[must_use]
    pub fn unusable_mask(&self) -> UnitMask {
        self.unusable
    }

    /// Mask of units the flexibility estimate can depend on; two subsets
    /// agreeing on these bits have identical estimates.
    #[must_use]
    pub fn estimate_relevant_mask(&self) -> UnitMask {
        self.estimate_relevant
    }

    /// Allocation cost of unit `k`.
    #[must_use]
    pub fn cost(&self, k: usize) -> Cost {
        self.costs[k]
    }

    /// Summed allocation cost of every unit in `mask`.
    #[must_use]
    pub fn mask_cost(&self, mask: UnitMask) -> Cost {
        let mut total = Cost::new(0);
        for k in mask.iter_ones() {
            total += self.costs[k];
        }
        total
    }
}

/// One precompiled elementary cluster-activation: the flattened problem
/// graph and the dense inherited-period table.
#[derive(Debug, Clone)]
pub struct CompiledActivation {
    /// The problem graph flattened under the activation's selection.
    pub flat: FlatGraph,
    /// Inherited period per problem vertex, indexed by `VertexId::index()`
    /// over the **full** problem arena; vertices outside the flattened
    /// graph (and unconstrained ones) hold `None`.
    pub periods: Vec<Option<Time>>,
}

impl CompiledActivation {
    /// Flattens `spec`'s problem graph under `selection` and runs the
    /// inherited-period fixed point (a producer inherits the minimum
    /// period of its consumers).
    ///
    /// # Errors
    ///
    /// Propagates flattening errors for malformed selections.
    pub fn new(spec: &SpecificationGraph, selection: &Selection) -> Result<Self, HgraphError> {
        let flat = spec.problem().flatten(selection)?;
        let mut periods = vec![None; spec.problem().graph().vertex_count()];
        for &v in &flat.vertices {
            periods[v.index()] = spec.problem().period(v);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for e in &flat.edges {
                let Some(p_down) = periods[e.to.index()] else {
                    continue;
                };
                let entry = &mut periods[e.from.index()];
                let better = match *entry {
                    None => true,
                    Some(p_up) => p_down < p_up,
                };
                if better {
                    *entry = Some(p_down);
                    changed = true;
                }
            }
        }
        Ok(CompiledActivation { flat, periods })
    }

    /// The inherited period of `v`, or `None` when `v` is inactive or
    /// unconstrained.
    #[must_use]
    pub fn period(&self, v: VertexId) -> Option<Time> {
        self.periods[v.index()]
    }
}

/// Immutable side tables compiled once per specification graph.
///
/// Build one per
/// exploration with [`CompiledSpec::with_activation_cache`] (or
/// [`CompiledSpec::new`] when the activation cache is not needed) and pass
/// `&CompiledSpec` to the estimate/binding/exploration entry points.
///
/// # Examples
///
/// ```
/// use flexplore_spec::{ArchitectureGraph, CompiledSpec, Cost, ProblemGraph, SpecificationGraph};
/// use flexplore_hgraph::Scope;
/// use flexplore_sched::Time;
///
/// # fn main() -> Result<(), flexplore_spec::SpecError> {
/// let mut p = ProblemGraph::new("p");
/// let t = p.add_process(Scope::Top, "t");
/// let mut a = ArchitectureGraph::new("a");
/// let slow = a.add_resource(Scope::Top, "slow", Cost::new(50));
/// let fast = a.add_resource(Scope::Top, "fast", Cost::new(150));
/// let mut spec = SpecificationGraph::new("s", p, a);
/// let m_slow = spec.add_mapping(t, slow, Time::from_ns(90))?;
/// let m_fast = spec.add_mapping(t, fast, Time::from_ns(10))?;
///
/// let compiled = CompiledSpec::new(&spec);
/// // Mapping edges come back latency-sorted (stable).
/// assert_eq!(compiled.mappings_of(t), &[m_fast, m_slow]);
/// assert_eq!(compiled.reachable_resources(t), &[slow, fast]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompiledSpec<'a> {
    spec: &'a SpecificationGraph,
    /// Mapping edges per problem vertex, stable-sorted by latency.
    mappings_by_process: Vec<Vec<MappingId>>,
    /// Sorted, deduplicated reachable resources per problem vertex.
    reachable: Vec<Vec<VertexId>>,
    /// Leaves per architecture cluster, in `leaves_of_cluster` order.
    arch_cluster_leaves: Vec<Vec<VertexId>>,
    /// Total cost per architecture cluster.
    arch_cluster_costs: Vec<Cost>,
    /// Per architecture edge: the unfiltered concrete vertices each
    /// endpoint may denote, in edge-id order.
    arch_edge_endpoints: Vec<(Vec<VertexId>, Vec<VertexId>)>,
    /// All communication resources of the architecture, in vertex-id order.
    comm_vertices: Vec<VertexId>,
    /// Precompiled elementary cluster-activations (possibly empty).
    activations: BTreeMap<Selection, CompiledActivation>,
}

impl<'a> CompiledSpec<'a> {
    /// Compiles the structural side tables (no activation cache).
    #[must_use]
    pub fn new(spec: &'a SpecificationGraph) -> Self {
        let problem = spec.problem().graph();
        let arch = spec.architecture().graph();

        let mut mappings_by_process: Vec<Vec<MappingId>> = vec![Vec::new(); problem.vertex_count()];
        for m in spec.mapping_ids() {
            // Deserialized specs can hold out-of-range endpoints; skip them
            // here instead of panicking — `try_new` rejects such specs with
            // a typed error, and flexlint reports them as F005.
            if let Some(list) = mappings_by_process.get_mut(spec.mapping(m).process.index()) {
                list.push(m);
            }
        }
        for list in &mut mappings_by_process {
            // Stable, so ties keep id order — exactly what the solver's
            // on-the-fly `sort_by_key` over an id-ordered scan produced.
            list.sort_by_key(|&m| spec.mapping(m).latency);
        }

        let reachable: Vec<Vec<VertexId>> = (0..problem.vertex_count())
            .map(|v| {
                let set: BTreeSet<VertexId> = mappings_by_process[v]
                    .iter()
                    .map(|&m| spec.mapping(m).resource)
                    .collect();
                set.into_iter().collect()
            })
            .collect();

        let arch_cluster_leaves: Vec<Vec<VertexId>> = arch
            .cluster_ids()
            .map(|c| arch.leaves_of_cluster(c))
            .collect();
        let arch_cluster_costs: Vec<Cost> = arch_cluster_leaves
            .iter()
            .map(|leaves| leaves.iter().map(|&v| spec.architecture().cost(v)).sum())
            .collect();

        let resolve = |node: NodeRef| -> Vec<VertexId> {
            match node {
                NodeRef::Vertex(v) => vec![v],
                NodeRef::Interface(i) => arch
                    .clusters_of(i)
                    .iter()
                    .flat_map(|&c| arch.leaves_of_cluster(c))
                    .collect(),
            }
        };
        let arch_edge_endpoints: Vec<(Vec<VertexId>, Vec<VertexId>)> = arch
            .edge_ids()
            .map(|e| {
                let (from, to) = arch.edge_endpoints(e);
                (resolve(from.node), resolve(to.node))
            })
            .collect();

        let comm_vertices: Vec<VertexId> = spec.architecture().communication_resources().collect();

        CompiledSpec {
            spec,
            mappings_by_process,
            reachable,
            arch_cluster_leaves,
            arch_cluster_costs,
            arch_edge_endpoints,
            comm_vertices,
            activations: BTreeMap::new(),
        }
    }

    /// Validates `spec`, then compiles the structural side tables.
    ///
    /// Prefer this over [`CompiledSpec::new`] for specifications from
    /// untrusted sources (hand-edited JSON): the accessor methods index by
    /// stored ids and would panic on dangling references.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect
    /// [`SpecificationGraph::validate`] finds.
    pub fn try_new(spec: &'a SpecificationGraph) -> Result<Self, crate::error::SpecError> {
        spec.validate()?;
        Ok(CompiledSpec::new(spec))
    }

    /// Compiles the side tables **and** eagerly flattens every elementary
    /// cluster-activation of the problem graph into the activation cache.
    ///
    /// Specifications with more than a few thousand activations (or with
    /// enumeration errors) keep an empty cache; lookups then fall back to
    /// [`compile_activation`](Self::compile_activation).
    #[must_use]
    pub fn with_activation_cache(spec: &'a SpecificationGraph) -> Self {
        let mut compiled = CompiledSpec::new(spec);
        let problem = spec.problem().graph();
        if problem.count_selections() > MAX_CACHED_ACTIVATIONS {
            return compiled;
        }
        let Ok(selections) = problem.enumerate_selections() else {
            return compiled;
        };
        for selection in selections {
            if let Ok(activation) = CompiledActivation::new(spec, &selection) {
                compiled.activations.insert(selection, activation);
            }
        }
        compiled
    }

    /// The specification this context was compiled from.
    #[must_use]
    pub fn spec(&self) -> &'a SpecificationGraph {
        self.spec
    }

    /// The mapping edges of `process`, stable-sorted by latency.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not a vertex of the problem graph.
    #[must_use]
    pub fn mappings_of(&self, process: VertexId) -> &[MappingId] {
        &self.mappings_by_process[process.index()]
    }

    /// The set `R_i` of resources reachable from `process` via mapping
    /// edges, sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not a vertex of the problem graph.
    #[must_use]
    pub fn reachable_resources(&self, process: VertexId) -> &[VertexId] {
        &self.reachable[process.index()]
    }

    /// The leaf resources of an architecture design cluster.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a cluster of the architecture graph.
    #[must_use]
    pub fn cluster_leaves(&self, c: flexplore_hgraph::ClusterId) -> &[VertexId] {
        &self.arch_cluster_leaves[c.index()]
    }

    /// The total allocation cost of an architecture design cluster.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a cluster of the architecture graph.
    #[must_use]
    pub fn cluster_cost(&self, c: flexplore_hgraph::ClusterId) -> Cost {
        self.arch_cluster_costs[c.index()]
    }

    /// Per architecture edge, the unfiltered concrete vertices each
    /// endpoint may denote (device interfaces resolve to every design leaf).
    #[must_use]
    pub fn arch_edge_endpoints(&self) -> &[(Vec<VertexId>, Vec<VertexId>)] {
        &self.arch_edge_endpoints
    }

    /// All communication resources of the architecture, in vertex-id order.
    #[must_use]
    pub fn comm_vertices(&self) -> &[VertexId] {
        &self.comm_vertices
    }

    /// The available vertices of an allocation: its top-level vertices plus
    /// the cached leaves of each allocated design cluster. Equals
    /// [`ResourceAllocation::available_vertices`].
    /// Unknown cluster ids contribute no leaves, matching
    /// [`ResourceAllocation::available_vertices`].
    #[must_use]
    pub fn available_vertices(&self, allocation: &ResourceAllocation) -> BTreeSet<VertexId> {
        let mut out = allocation.vertices.clone();
        for &c in &allocation.clusters {
            if let Some(leaves) = self.arch_cluster_leaves.get(c.index()) {
                out.extend(leaves.iter().copied());
            }
        }
        out
    }

    /// The allocation cost, summed from cached per-cluster costs. Equals
    /// [`ResourceAllocation::cost`].
    /// Unknown ids contribute nothing, matching [`ResourceAllocation::cost`].
    #[must_use]
    pub fn allocation_cost(&self, allocation: &ResourceAllocation) -> Cost {
        let arch_vertices = self.spec.architecture().graph().vertex_count();
        let vertex_cost: Cost = allocation
            .vertices
            .iter()
            .filter(|v| v.index() < arch_vertices)
            .map(|&v| self.spec.architecture().cost(v))
            .sum();
        let cluster_cost: Cost = allocation
            .clusters
            .iter()
            .filter_map(|c| self.arch_cluster_costs.get(c.index()))
            .copied()
            .sum();
        vertex_cost + cluster_cost
    }

    /// Compiles the bitmask side tables over the given unit universe: bit
    /// `k` of every mask stands for `units[k]`. Coverage masks answer "can
    /// this subset implement problem vertex `v`" with one AND; neighbor
    /// masks answer the useless-bus pruning with AND/POPCNT; the
    /// estimate-relevant mask keys the estimate memo of the lattice search.
    ///
    /// # Panics
    ///
    /// Panics when `units` holds more than [`MAX_UNITS`] entries or names a
    /// vertex outside the architecture arena.
    #[must_use]
    pub fn unit_masks(&self, units: &[Unit]) -> UnitMasks {
        assert!(
            units.len() <= MAX_UNITS,
            "unit masks index at most {MAX_UNITS} units"
        );
        let spec = self.spec;
        let arch = spec.architecture();
        let graph = arch.graph();
        let targets: BTreeSet<VertexId> = spec
            .mapping_ids()
            .map(|m| spec.mapping(m).resource)
            .collect();

        // Unit bit of each top-level vertex / design cluster, plus the
        // unit bits contributing each concrete resource vertex.
        let mut vertex_unit: BTreeMap<VertexId, usize> = BTreeMap::new();
        let mut cluster_unit: BTreeMap<ClusterId, usize> = BTreeMap::new();
        let mut resource_bits: Vec<UnitMask> = vec![UnitMask::empty(); graph.vertex_count()];
        let mut comm = UnitMask::empty();
        let mut unusable = UnitMask::empty();
        let mut estimate_relevant = UnitMask::empty();
        let mut costs = Vec::with_capacity(units.len());
        for (k, unit) in units.iter().enumerate() {
            let bit = UnitMask::bit(k);
            match *unit {
                Unit::Vertex(v) => {
                    vertex_unit.insert(v, k);
                    if let Some(slot) = resource_bits.get_mut(v.index()) {
                        *slot |= bit;
                    }
                    match arch.kind(v) {
                        ResourceKind::Communication => comm |= bit,
                        ResourceKind::Functional if !targets.contains(&v) => unusable |= bit,
                        ResourceKind::Functional => {}
                    }
                    if targets.contains(&v) {
                        estimate_relevant |= bit;
                    }
                    costs.push(arch.cost(v));
                }
                Unit::Cluster(c) => {
                    cluster_unit.insert(c, k);
                    let leaves = self
                        .arch_cluster_leaves
                        .get(c.index())
                        .map_or(&[][..], Vec::as_slice);
                    for leaf in leaves {
                        if let Some(slot) = resource_bits.get_mut(leaf.index()) {
                            *slot |= bit;
                        }
                    }
                    if leaves.iter().all(|v| !targets.contains(v)) {
                        unusable |= bit;
                    } else {
                        estimate_relevant |= bit;
                    }
                    costs.push(
                        self.arch_cluster_costs
                            .get(c.index())
                            .copied()
                            .unwrap_or(Cost::new(0)),
                    );
                }
            }
        }

        let coverage: Vec<UnitMask> = self
            .reachable
            .iter()
            .map(|rs| {
                rs.iter()
                    .map(|r| {
                        resource_bits
                            .get(r.index())
                            .copied()
                            .unwrap_or(UnitMask::empty())
                    })
                    .fold(UnitMask::empty(), |acc, bits| acc | bits)
            })
            .collect();

        // Neighbor masks: the unit-granular mirror of the communication
        // graph (links into a device interface denote its design clusters).
        let mut neighbors = vec![UnitMask::empty(); units.len()];
        for e in graph.edge_ids() {
            let (from, to) = graph.edge_endpoints(e);
            let ends = [from.node, to.node];
            for (idx, end) in ends.iter().enumerate() {
                let NodeRef::Vertex(v) = *end else { continue };
                if arch.kind(v) != ResourceKind::Communication {
                    continue;
                }
                let Some(&k) = vertex_unit.get(&v) else {
                    continue;
                };
                match ends[1 - idx] {
                    NodeRef::Vertex(o) => {
                        if let Some(&j) = vertex_unit.get(&o) {
                            neighbors[k].set(j);
                        }
                    }
                    NodeRef::Interface(i) => {
                        for c in graph.clusters_of(i) {
                            if let Some(&j) = cluster_unit.get(c) {
                                neighbors[k].set(j);
                            }
                        }
                    }
                }
            }
        }

        UnitMasks {
            unit_count: units.len(),
            coverage,
            neighbors,
            comm,
            unusable,
            estimate_relevant,
            costs,
        }
    }

    /// Looks up a precompiled activation by its selection.
    #[must_use]
    pub fn activation(&self, selection: &Selection) -> Option<&CompiledActivation> {
        self.activations.get(selection)
    }

    /// Compiles an activation on demand (cache misses, uncached contexts).
    ///
    /// # Errors
    ///
    /// Propagates flattening errors for malformed selections.
    pub fn compile_activation(
        &self,
        selection: &Selection,
    ) -> Result<CompiledActivation, HgraphError> {
        CompiledActivation::new(self.spec, selection)
    }

    /// Number of precompiled activations (diagnostics/tests).
    #[must_use]
    pub fn cached_activations(&self) -> usize {
        self.activations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::ArchitectureGraph;
    use crate::problem::ProblemGraph;
    use flexplore_hgraph::Scope;

    fn spec_with_fpga() -> SpecificationGraph {
        let mut p = ProblemGraph::new("p");
        let src = p.add_process(Scope::Top, "src");
        let sink = p.add_process_with(
            Scope::Top,
            "sink",
            crate::attrs::ProcessAttrs::new().with_period(Time::from_ns(100)),
        );
        p.add_dependence(src, sink).unwrap();
        let stage = p.add_alternative_stage(Scope::Top, "I", &["a", "b"]);
        let mut arch = ArchitectureGraph::new("a");
        let up = arch.add_resource(Scope::Top, "uP", Cost::new(100));
        let bus = arch.add_bus(Scope::Top, "C1", Cost::new(10));
        let fpga = arch.add_interface(Scope::Top, "FPGA");
        arch.connect(up, bus).unwrap();
        arch.connect_through(bus, fpga).unwrap();
        let d1 = arch.add_design(fpga, "cfg1", "D1", Cost::new(60)).unwrap();
        let mut spec = SpecificationGraph::new("s", p, arch);
        spec.add_mapping(src, up, Time::from_ns(20)).unwrap();
        spec.add_mapping(sink, up, Time::from_ns(30)).unwrap();
        spec.add_mapping(sink, d1.design, Time::from_ns(5)).unwrap();
        for &(_, v) in &stage.alternatives {
            spec.add_mapping(v, up, Time::from_ns(1)).unwrap();
        }
        spec
    }

    #[test]
    fn tables_match_the_uncompiled_queries() {
        let spec = spec_with_fpga();
        let compiled = CompiledSpec::new(&spec);
        for v in spec.problem().graph().vertex_ids() {
            let mut expected: Vec<MappingId> = spec.mappings_of(v).collect();
            expected.sort_by_key(|&m| spec.mapping(m).latency);
            assert_eq!(compiled.mappings_of(v), expected.as_slice());
            let reachable: Vec<VertexId> = spec.reachable_resources(v).into_iter().collect();
            assert_eq!(compiled.reachable_resources(v), reachable.as_slice());
        }
        let arch = spec.architecture();
        for c in arch.graph().cluster_ids() {
            assert_eq!(
                compiled.cluster_leaves(c),
                arch.graph().leaves_of_cluster(c)
            );
            assert_eq!(compiled.cluster_cost(c), arch.cluster_cost(c));
        }
        assert_eq!(
            compiled.comm_vertices(),
            arch.communication_resources().collect::<Vec<_>>()
        );
    }

    #[test]
    fn allocation_helpers_match_the_allocation_methods() {
        let spec = spec_with_fpga();
        let compiled = CompiledSpec::new(&spec);
        let arch = spec.architecture();
        let up = arch.graph().vertex_by_name(Scope::Top, "uP").unwrap();
        let cluster = arch.graph().cluster_ids().next().unwrap();
        let alloc = ResourceAllocation::new()
            .with_vertex(up)
            .with_cluster(cluster);
        assert_eq!(
            compiled.available_vertices(&alloc),
            alloc.available_vertices(arch)
        );
        assert_eq!(compiled.allocation_cost(&alloc), alloc.cost(arch));
    }

    #[test]
    fn activation_cache_matches_on_demand_compilation() {
        let spec = spec_with_fpga();
        let compiled = CompiledSpec::with_activation_cache(&spec);
        let activations = spec.problem().elementary_activations().unwrap();
        assert_eq!(compiled.cached_activations(), activations.len());
        for selection in &activations {
            let cached = compiled.activation(selection).expect("cached");
            let fresh = compiled.compile_activation(selection).unwrap();
            assert_eq!(cached.flat.vertices, fresh.flat.vertices);
            assert_eq!(cached.periods, fresh.periods);
        }
    }

    #[test]
    fn dense_periods_match_the_map_fixed_point() {
        // Mirror of the binding layer's inherited-period computation:
        // src feeds sink (period 100) so src inherits 100.
        let spec = spec_with_fpga();
        let compiled = CompiledSpec::with_activation_cache(&spec);
        let selection = spec.problem().elementary_activations().unwrap()[0].clone();
        let activation = compiled.activation(&selection).unwrap();
        let src = spec
            .problem()
            .graph()
            .vertex_by_name(Scope::Top, "src")
            .unwrap();
        assert_eq!(activation.period(src), Some(Time::from_ns(100)));
    }

    #[test]
    fn unit_masks_mirror_the_flat_queries() {
        let spec = spec_with_fpga();
        let compiled = CompiledSpec::new(&spec);
        let graph = spec.architecture().graph();
        let mut units: Vec<Unit> = graph.vertices_in(Scope::Top).map(Unit::Vertex).collect();
        units.extend(graph.cluster_ids().map(Unit::Cluster));
        // Units: [uP, C1 (bus), D1 design cluster].
        assert_eq!(units.len(), 3);
        let masks = compiled.unit_masks(&units);
        let m = |bits: u64| UnitMask::from_words([bits, 0, 0, 0]);
        assert_eq!(masks.unit_count(), 3);
        assert_eq!(masks.comm_mask(), m(0b010));
        assert_eq!(masks.unusable_mask(), UnitMask::empty());
        assert_eq!(masks.estimate_relevant_mask(), m(0b101));
        // The bus links uP directly and the design cluster through the
        // device interface.
        assert_eq!(masks.neighbors(1), m(0b101));
        let problem = spec.problem().graph();
        let src = problem.vertex_by_name(Scope::Top, "src").unwrap();
        let sink = problem.vertex_by_name(Scope::Top, "sink").unwrap();
        assert_eq!(masks.coverage(src), m(0b001));
        assert_eq!(masks.coverage(sink), m(0b101));
        assert_eq!(masks.cost(1), Cost::new(10));
        assert_eq!(masks.mask_cost(UnitMask::full(3)), Cost::new(170));
    }

    #[test]
    fn unit_masks_scale_past_one_word() {
        // A wide flat architecture: 70 processors, every one a mapping
        // target, so coverage and relevance span two mask words.
        let mut problem = ProblemGraph::new("p");
        let task = problem.add_process(Scope::Top, "task");
        let mut arch = ArchitectureGraph::new("a");
        let cpus: Vec<VertexId> = (0..70)
            .map(|i| arch.add_resource(Scope::Top, format!("cpu{i}"), Cost::new(i + 1)))
            .collect();
        let mut spec = SpecificationGraph::new("wide", problem, arch);
        for &cpu in &cpus {
            spec.add_mapping(task, cpu, Time::from_ns(1)).unwrap();
        }
        let compiled = CompiledSpec::new(&spec);
        let units: Vec<Unit> = cpus.iter().copied().map(Unit::Vertex).collect();
        let masks = compiled.unit_masks(&units);
        assert_eq!(masks.unit_count(), 70);
        assert_eq!(masks.estimate_relevant_mask(), UnitMask::full(70));
        assert_eq!(masks.unusable_mask(), UnitMask::empty());
        assert_eq!(masks.coverage(task), UnitMask::full(70));
        // High-word bits count like low-word bits.
        assert_eq!(masks.mask_cost(UnitMask::bit(69)), Cost::new(70));
        // mask_cost over arbitrary subsets equals the naive per-bit sum.
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..32 {
            let mut mask = UnitMask::empty();
            for k in 0..70 {
                lcg = lcg.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                if lcg >> 63 == 1 {
                    mask.set(k);
                }
            }
            let naive: Cost = mask.iter_ones().map(|k| masks.cost(k)).sum();
            assert_eq!(masks.mask_cost(mask), naive);
        }
    }

    #[test]
    fn compiled_spec_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<CompiledSpec<'_>>();
        assert_sync::<CompiledActivation>();
    }
}
