//! Stable content fingerprints of compiled specifications.
//!
//! The warm-start exploration cache keys persisted results by *what the
//! specification says*, not by file identity: two JSON files whose
//! mappings are listed in a different order, or that were produced on
//! different platforms, must hash identically, while any change to a
//! latency, a cost, a mapping edge or the graph structure must change the
//! hash. [`SpecSignature`] therefore hashes **names and sorted value
//! tables**, never arena ids or iteration order, and splits the hash into
//! per-unit layers so the cache can tell *which* allocatable units an
//! edit touched:
//!
//! * `est_sig` — everything the flexibility **estimate** of a submask can
//!   depend on through this unit (its mapping-coverage column and its
//!   estimate-relevance bit). Estimate memo entries stay valid across an
//!   edit iff their relevant submask avoids every unit whose `est_sig`
//!   changed.
//! * `enum_sig` — everything the **enumeration** (candidate set, costs,
//!   pruning, analysis facts, every enumerate counter) can depend on:
//!   `est_sig` plus the unit's cost, bus neighborhood, and
//!   comm/unusable flags. If no unit's `enum_sig` changed, the whole
//!   enumeration is replayable byte-for-byte — notably, **latencies are
//!   invisible to the enumeration**, so a pure latency edit keeps every
//!   `enum_sig` intact.
//! * `bind_sig` — everything the **binding solver** sees through this
//!   unit: its mappings *with latencies*, incident architecture edges,
//!   cost and kind. Cached per-candidate bind outcomes stay valid iff
//!   the candidate mask avoids every unit whose `bind_sig` changed.
//!
//! The top-level [`Fingerprint`] folds all layers (plus the problem-graph
//! hash and the non-unit remainder) into one 64-bit value; equality means
//! "same compiled content" and lets the cache replay a full result.

use crate::compiled::{allocatable_units, CompiledSpec, Unit};
use crate::spec::SpecificationGraph;
use flexplore_hgraph::{NodeRef, VertexId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A 64-bit stable content hash of a compiled specification.
///
/// Displayed and serialized as a fixed-width lowercase hex string so JSON
/// dumps and CI byte-diffs are platform-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Serialize for Fingerprint {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Fingerprint {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => u64::from_str_radix(s, 16)
                .map(Fingerprint)
                .map_err(|_| DeError::new(format!("invalid fingerprint hex: {s:?}"))),
            other => Err(DeError::expected("fingerprint hex string", other)),
        }
    }
}

/// Per-unit hash layers of a [`SpecSignature`], in unit-universe order
/// (see [`allocatable_units`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitSig {
    /// Identity of the unit: kind (vertex/cluster) and name path. Two
    /// signatures whose `ident` columns agree describe the same unit
    /// universe, bit for bit.
    pub ident: u64,
    /// Estimate layer: coverage column + estimate-relevance bit.
    pub est_sig: u64,
    /// Enumeration layer: `est_sig` + cost + neighborhood + flags.
    pub enum_sig: u64,
    /// Binding layer: mappings with latencies + incident arch edges.
    pub bind_sig: u64,
}

/// The layered content signature of a compiled specification: the global
/// [`Fingerprint`] plus everything the warm-start delta engine needs to
/// scope re-exploration to the units an edit actually touched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecSignature {
    /// Hash of everything — equal signatures mean a full-result replay
    /// is sound.
    pub fingerprint: Fingerprint,
    /// Hash of the entire problem graph (hierarchy, ports, dependences,
    /// periods, negligibility). Any problem change forces a cold run.
    pub problem_hash: u64,
    /// Hash of specification content not attributable to any single unit
    /// (architecture hierarchy skeleton, unattributable mappings). A
    /// mismatch forces a cold run.
    pub extras_hash: u64,
    /// Per-unit layers, indexed like the unit universe.
    pub units: Vec<UnitSig>,
}

/// Streaming 64-bit mixer (SplitMix64 finalizer per word). Not
/// cryptographic — collision resistance is "never by accident", which is
/// all a cache key needs; correctness never depends on it because warm
/// results are byte-compared against cold in the test suite.
struct Mix(u64);

impl Mix {
    fn new(tag: u64) -> Self {
        Mix(tag ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn u64(&mut self, x: u64) {
        let mut z = self.0.wrapping_add(x).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.u64(u64::from_le_bytes(word));
        }
    }

    /// Mixes a multiset of already-hashed items order-independently by
    /// sorting before folding.
    fn sorted(&mut self, mut items: Vec<u64>) {
        items.sort_unstable();
        self.u64(items.len() as u64);
        for item in items {
            self.u64(item);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Domain-separation tags so the same strings hashed under different
/// layers cannot collide structurally.
mod tag {
    pub const IDENT: u64 = 1;
    pub const EST: u64 = 2;
    pub const ENUM: u64 = 3;
    pub const BIND: u64 = 4;
    pub const PROBLEM: u64 = 5;
    pub const EXTRAS: u64 = 6;
    pub const FINGERPRINT: u64 = 7;
}

impl SpecSignature {
    /// Computes the layered signature of a compiled specification.
    #[must_use]
    pub fn of(compiled: &CompiledSpec<'_>) -> Self {
        let spec = compiled.spec();
        let units = allocatable_units(spec);
        let masks = compiled.unit_masks(&units);
        let arch = spec.architecture();
        let agraph = arch.graph();
        let problem = spec.problem();
        let pgraph = problem.graph();

        // Resource leaf -> owning unit index. A top-level vertex owns
        // itself; a design cluster owns its leaves.
        let mut owner: BTreeMap<VertexId, usize> = BTreeMap::new();
        for (k, unit) in units.iter().enumerate() {
            match *unit {
                Unit::Vertex(v) => {
                    owner.insert(v, k);
                }
                Unit::Cluster(c) => {
                    for &leaf in compiled.cluster_leaves(c) {
                        owner.insert(leaf, k);
                    }
                }
            }
        }

        // Unit identities: kind + name path (cluster names are qualified
        // by their interface so same-named designs of different devices
        // stay distinct).
        let idents: Vec<u64> = units
            .iter()
            .map(|unit| {
                let mut m = Mix::new(tag::IDENT);
                match *unit {
                    Unit::Vertex(v) => {
                        m.u64(0);
                        m.str(arch.resource_name(v));
                    }
                    Unit::Cluster(c) => {
                        m.u64(1);
                        m.str(agraph.interface_name(agraph.interface_of(c)));
                        m.str(agraph.cluster_name(c));
                    }
                }
                m.finish()
            })
            .collect();

        // Coverage columns, inverted from the per-vertex masks: for every
        // unit, the (sorted) set of process names it can help implement.
        let mut coverage_names: Vec<Vec<u64>> = vec![Vec::new(); units.len()];
        for v in pgraph.leaves() {
            let column = masks.coverage(v);
            if column.is_empty() {
                continue;
            }
            let mut m = Mix::new(tag::EST);
            m.str(problem.process_name(v));
            let name_hash = m.finish();
            for k in column.iter_ones() {
                coverage_names[k].push(name_hash);
            }
        }

        let relevant = masks.estimate_relevant_mask();
        let est_sigs: Vec<u64> = (0..units.len())
            .map(|k| {
                let mut m = Mix::new(tag::EST);
                m.u64(idents[k]);
                m.u64(u64::from(relevant.test(k)));
                m.sorted(coverage_names[k].clone());
                m.finish()
            })
            .collect();

        let comm = masks.comm_mask();
        let unusable = masks.unusable_mask();
        let enum_sigs: Vec<u64> = (0..units.len())
            .map(|k| {
                let mut m = Mix::new(tag::ENUM);
                m.u64(est_sigs[k]);
                m.u64(masks.cost(k).dollars());
                m.u64(u64::from(comm.test(k)));
                m.u64(u64::from(unusable.test(k)));
                // Neighborhood by neighbor identity, order-independent.
                m.sorted(masks.neighbors(k).iter_ones().map(|n| idents[n]).collect());
                m.finish()
            })
            .collect();

        // Binding layer: mappings with latencies, grouped by owning unit.
        let mut extra = Mix::new(tag::EXTRAS);
        let mut mapping_rows: Vec<Vec<u64>> = vec![Vec::new(); units.len()];
        let mut orphan_mappings: Vec<u64> = Vec::new();
        for mid in spec.mapping_ids() {
            let mapping = spec.mapping(mid);
            let mut m = Mix::new(tag::BIND);
            m.str(problem.process_name(mapping.process));
            m.str(arch.resource_name(mapping.resource));
            m.u64(mapping.latency.as_ns());
            let row = m.finish();
            match owner.get(&mapping.resource) {
                Some(&k) => mapping_rows[k].push(row),
                None => orphan_mappings.push(row),
            }
        }
        extra.sorted(orphan_mappings);

        // Incident architecture edges, described by resolved endpoint
        // leaves (matching how the compiler resolves connectivity).
        let mut edge_rows: Vec<Vec<u64>> = vec![Vec::new(); units.len()];
        for (from, to) in compiled.arch_edge_endpoints() {
            let mut m = Mix::new(tag::BIND);
            m.u64(1);
            let side = |m: &mut Mix, leaves: &[VertexId]| {
                m.sorted(
                    leaves
                        .iter()
                        .map(|&v| {
                            let mut h = Mix::new(tag::BIND);
                            h.str(arch.resource_name(v));
                            h.finish()
                        })
                        .collect(),
                );
            };
            side(&mut m, from);
            side(&mut m, to);
            let row = m.finish();
            let mut touched: Vec<usize> = from
                .iter()
                .chain(to.iter())
                .filter_map(|v| owner.get(v).copied())
                .collect();
            touched.sort_unstable();
            touched.dedup();
            for k in touched {
                edge_rows[k].push(row);
            }
        }

        let bind_sigs: Vec<u64> = (0..units.len())
            .map(|k| {
                let mut m = Mix::new(tag::BIND);
                m.u64(idents[k]);
                m.u64(masks.cost(k).dollars());
                m.u64(u64::from(comm.test(k)));
                m.sorted(mapping_rows[k].clone());
                m.sorted(edge_rows[k].clone());
                m.finish()
            })
            .collect();

        let problem_hash = hash_problem(spec);

        // Non-unit remainder: the architecture hierarchy skeleton
        // (interfaces, ports, clusters and their wiring) — anything a
        // per-unit layer cannot own but the compiler can observe.
        for i in agraph.interface_ids() {
            let mut m = Mix::new(tag::EXTRAS);
            m.str(agraph.interface_name(i));
            m.u64(agraph.ports_of(i).len() as u64);
            for &p in agraph.ports_of(i) {
                m.str(agraph.port_name(p));
            }
            m.u64(agraph.clusters_of(i).len() as u64);
            extra.u64(m.finish());
        }
        let extras_hash = extra.finish();

        let unit_sigs: Vec<UnitSig> = (0..units.len())
            .map(|k| UnitSig {
                ident: idents[k],
                est_sig: est_sigs[k],
                enum_sig: enum_sigs[k],
                bind_sig: bind_sigs[k],
            })
            .collect();

        // Fold the unit layers sorted by identity so the fingerprint is
        // independent of unit-universe order, then the global hashes.
        let mut f = Mix::new(tag::FINGERPRINT);
        f.u64(problem_hash);
        f.u64(extras_hash);
        f.sorted(
            unit_sigs
                .iter()
                .map(|s| {
                    let mut m = Mix::new(tag::FINGERPRINT);
                    m.u64(s.ident);
                    m.u64(s.est_sig);
                    m.u64(s.enum_sig);
                    m.u64(s.bind_sig);
                    m.finish()
                })
                .collect(),
        );

        SpecSignature {
            fingerprint: Fingerprint(f.finish()),
            problem_hash,
            extras_hash,
            units: unit_sigs,
        }
    }

    /// `true` when both signatures describe the same unit universe (same
    /// length, same identity in every position) — the precondition for
    /// any per-unit delta reasoning.
    #[must_use]
    pub fn same_universe(&self, other: &SpecSignature) -> bool {
        self.units.len() == other.units.len()
            && self
                .units
                .iter()
                .zip(&other.units)
                .all(|(a, b)| a.ident == b.ident)
    }
}

/// Convenience: the top-level fingerprint of a compiled specification.
#[must_use]
pub fn fingerprint(compiled: &CompiledSpec<'_>) -> Fingerprint {
    SpecSignature::of(compiled).fingerprint
}

/// Hashes the entire problem graph: hierarchy (interfaces, ports,
/// clusters, port wiring), processes with periods and negligibility, and
/// dependence edges — all by name, order-independently.
fn hash_problem(spec: &SpecificationGraph) -> u64 {
    let problem = spec.problem();
    let graph = problem.graph();
    let mut m = Mix::new(tag::PROBLEM);

    // A stable textual path for any node: scope-qualified by enclosing
    // clusters so same-named processes in different clusters differ.
    let node_path = |node: NodeRef| -> String {
        let scope = graph.scope_of(node);
        let mut path = String::new();
        for c in graph.enclosing_clusters(scope) {
            path.push_str(graph.interface_name(graph.interface_of(c)));
            path.push('/');
            path.push_str(graph.cluster_name(c));
            path.push('/');
        }
        match node {
            NodeRef::Vertex(v) => path.push_str(graph.vertex_name(v)),
            NodeRef::Interface(i) => path.push_str(graph.interface_name(i)),
        }
        path
    };

    let mut vertex_rows: Vec<u64> = Vec::new();
    for v in graph.vertex_ids() {
        let mut row = Mix::new(tag::PROBLEM);
        row.str(&node_path(NodeRef::Vertex(v)));
        row.u64(problem.period(v).map_or(u64::MAX, |t| t.as_ns()));
        row.u64(u64::from(problem.is_negligible(v)));
        vertex_rows.push(row.finish());
    }
    m.sorted(vertex_rows);

    let mut iface_rows: Vec<u64> = Vec::new();
    for i in graph.interface_ids() {
        let mut row = Mix::new(tag::PROBLEM);
        row.str(&node_path(NodeRef::Interface(i)));
        row.sorted(
            graph
                .ports_of(i)
                .iter()
                .map(|&p| {
                    let mut h = Mix::new(tag::PROBLEM);
                    h.str(graph.port_name(p));
                    h.finish()
                })
                .collect(),
        );
        row.sorted(
            graph
                .clusters_of(i)
                .iter()
                .map(|&c| {
                    let mut h = Mix::new(tag::PROBLEM);
                    h.str(graph.cluster_name(c));
                    // Port wiring of the cluster, by port name and target
                    // path.
                    h.sorted(
                        graph
                            .ports_of(i)
                            .iter()
                            .filter_map(|&p| {
                                graph.port_target(c, p).map(|t| {
                                    let mut w = Mix::new(tag::PROBLEM);
                                    w.str(graph.port_name(p));
                                    w.str(&node_path(t.node));
                                    w.finish()
                                })
                            })
                            .collect(),
                    );
                    h.finish()
                })
                .collect(),
        );
        iface_rows.push(row.finish());
    }
    m.sorted(iface_rows);

    let mut edge_rows: Vec<u64> = Vec::new();
    for e in graph.edge_ids() {
        let (from, to) = graph.edge_endpoints(e);
        let mut row = Mix::new(tag::PROBLEM);
        row.str(&node_path(from.node));
        if let Some(p) = from.port {
            row.str(graph.port_name(p));
        }
        row.str(&node_path(to.node));
        if let Some(p) = to.port {
            row.str(graph.port_name(p));
        }
        edge_rows.push(row.finish());
    }
    m.sorted(edge_rows);

    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Cost;
    use crate::problem::ProblemGraph;
    use crate::ArchitectureGraph;
    use flexplore_hgraph::Scope;
    use flexplore_sched::Time;

    fn two_unit_spec(latency_b: u64, cost_b: u64) -> SpecificationGraph {
        let mut p = ProblemGraph::new("p");
        let a = p.add_process(Scope::Top, "a");
        let b = p.add_process(Scope::Top, "b");
        p.add_dependence(a, b).unwrap();

        let mut arch = ArchitectureGraph::new("arch");
        let cpu = arch.add_resource(Scope::Top, "cpu", Cost::new(100));
        let dsp = arch.add_resource(Scope::Top, "dsp", Cost::new(cost_b));
        let bus = arch.add_bus(Scope::Top, "bus", Cost::new(10));
        arch.connect(cpu, bus).unwrap();
        arch.connect(dsp, bus).unwrap();

        let mut spec = SpecificationGraph::new("s", p, arch);
        spec.add_mapping(a, cpu, Time::from_ns(5)).unwrap();
        spec.add_mapping(b, dsp, Time::from_ns(latency_b)).unwrap();
        spec
    }

    #[test]
    fn identical_specs_hash_identically() {
        let s1 = two_unit_spec(7, 50);
        let s2 = two_unit_spec(7, 50);
        let sig1 = SpecSignature::of(&CompiledSpec::new(&s1));
        let sig2 = SpecSignature::of(&CompiledSpec::new(&s2));
        assert_eq!(sig1, sig2);
        assert_eq!(sig1.fingerprint, sig2.fingerprint);
    }

    #[test]
    fn mapping_insertion_order_does_not_matter() {
        let mut p = ProblemGraph::new("p");
        let a = p.add_process(Scope::Top, "a");
        let b = p.add_process(Scope::Top, "b");
        let mut arch = ArchitectureGraph::new("arch");
        let cpu = arch.add_resource(Scope::Top, "cpu", Cost::new(100));

        let mut s1 = SpecificationGraph::new("s", p.clone(), arch.clone());
        s1.add_mapping(a, cpu, Time::from_ns(1)).unwrap();
        s1.add_mapping(b, cpu, Time::from_ns(2)).unwrap();
        let mut s2 = SpecificationGraph::new("s", p, arch);
        s2.add_mapping(b, cpu, Time::from_ns(2)).unwrap();
        s2.add_mapping(a, cpu, Time::from_ns(1)).unwrap();

        assert_eq!(
            fingerprint(&CompiledSpec::new(&s1)),
            fingerprint(&CompiledSpec::new(&s2))
        );
    }

    #[test]
    fn a_latency_edit_changes_only_the_bind_layer_of_its_unit() {
        let s1 = two_unit_spec(7, 50);
        let s2 = two_unit_spec(8, 50);
        let sig1 = SpecSignature::of(&CompiledSpec::new(&s1));
        let sig2 = SpecSignature::of(&CompiledSpec::new(&s2));

        assert_ne!(sig1.fingerprint, sig2.fingerprint);
        assert_eq!(sig1.problem_hash, sig2.problem_hash);
        assert_eq!(sig1.extras_hash, sig2.extras_hash);
        assert!(sig1.same_universe(&sig2));
        let changed: Vec<usize> = (0..sig1.units.len())
            .filter(|&k| sig1.units[k] != sig2.units[k])
            .collect();
        assert_eq!(changed.len(), 1, "exactly one unit changed");
        let k = changed[0];
        assert_eq!(sig1.units[k].est_sig, sig2.units[k].est_sig);
        assert_eq!(sig1.units[k].enum_sig, sig2.units[k].enum_sig);
        assert_ne!(sig1.units[k].bind_sig, sig2.units[k].bind_sig);
    }

    #[test]
    fn a_cost_edit_changes_the_enum_layer() {
        let s1 = two_unit_spec(7, 50);
        let s2 = two_unit_spec(7, 60);
        let sig1 = SpecSignature::of(&CompiledSpec::new(&s1));
        let sig2 = SpecSignature::of(&CompiledSpec::new(&s2));

        assert!(sig1.same_universe(&sig2));
        let changed: Vec<usize> = (0..sig1.units.len())
            .filter(|&k| sig1.units[k].enum_sig != sig2.units[k].enum_sig)
            .collect();
        assert_eq!(changed.len(), 1);
        // Cost is invisible to the estimate layer.
        assert_eq!(
            sig1.units[changed[0]].est_sig,
            sig2.units[changed[0]].est_sig
        );
    }

    #[test]
    fn a_problem_edit_changes_the_problem_hash() {
        let s1 = two_unit_spec(7, 50);
        let mut s2 = two_unit_spec(7, 50);
        let v = s2
            .problem()
            .graph()
            .vertex_by_name(Scope::Top, "a")
            .unwrap();
        s2.problem_mut().set_period(v, Time::from_ns(99));
        let sig1 = SpecSignature::of(&CompiledSpec::new(&s1));
        let sig2 = SpecSignature::of(&CompiledSpec::new(&s2));
        assert_ne!(sig1.problem_hash, sig2.problem_hash);
        assert_ne!(sig1.fingerprint, sig2.fingerprint);
    }

    #[test]
    fn fingerprints_render_as_fixed_width_hex_and_round_trip_serde() {
        let s = two_unit_spec(7, 50);
        let fp = fingerprint(&CompiledSpec::new(&s));
        let text = fp.to_string();
        assert_eq!(text.len(), 16);
        let json = serde_json::to_string(&fp).unwrap();
        let back: Fingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fp);
    }
}
