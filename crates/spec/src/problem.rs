//! The problem graph `G_P`: hierarchical model of the required behavior.
//!
//! Vertices and interfaces represent processes and communication operations
//! at system level; edges model dependence relations (a partial order among
//! operations); clusters are alternative substitutions for interfaces
//! (Section 2 of the paper).

use crate::attrs::ProcessAttrs;
use flexplore_hgraph::{
    ClusterId, Endpoint, FlatGraph, HgraphError, HierarchicalGraph, InterfaceId, PortDirection,
    PortId, PortTarget, Scope, Selection, VertexId,
};
use flexplore_sched::Time;
use serde::{Deserialize, Serialize};

/// A dependence relation between two operations of the problem graph.
///
/// The unit payload keeps edges cheap; the `Display` impl (empty string)
/// keeps DOT exports clean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataDep;

impl std::fmt::Display for DataDep {
    fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Ok(())
    }
}

/// Handle returned by [`ProblemGraph::add_alternative_stage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlternativeStage {
    /// The stage interface.
    pub interface: InterfaceId,
    /// The `in` port.
    pub input: PortId,
    /// The `out` port.
    pub output: PortId,
    /// One `(cluster, process)` pair per alternative, in input order.
    pub alternatives: Vec<(ClusterId, VertexId)>,
}

/// The hierarchical problem graph of a specification.
///
/// A thin domain wrapper around [`HierarchicalGraph`]: processes are
/// vertices weighted with [`ProcessAttrs`], dependences are edges. The raw
/// graph stays reachable through [`graph`](ProblemGraph::graph) for generic
/// algorithms (flattening, DOT export, …).
///
/// # Examples
///
/// ```
/// use flexplore_spec::ProblemGraph;
/// use flexplore_hgraph::Scope;
/// use flexplore_sched::Time;
///
/// # fn main() -> Result<(), flexplore_hgraph::HgraphError> {
/// let mut p = ProblemGraph::new("tv");
/// let ctrl = p.add_process(Scope::Top, "P_C");
/// let auth = p.add_process(Scope::Top, "P_A");
/// p.set_negligible(ctrl, true);
/// p.set_negligible(auth, true);
/// let out = p.add_process(Scope::Top, "P_U");
/// p.set_period(out, Time::from_ns(300));
/// p.add_dependence(ctrl, out)?;
/// assert_eq!(p.period(out), Some(Time::from_ns(300)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemGraph {
    graph: HierarchicalGraph<ProcessAttrs, DataDep>,
}

impl ProblemGraph {
    /// Creates an empty problem graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProblemGraph {
            graph: HierarchicalGraph::new(name),
        }
    }

    /// Returns the underlying hierarchical graph.
    #[must_use]
    pub fn graph(&self) -> &HierarchicalGraph<ProcessAttrs, DataDep> {
        &self.graph
    }

    /// Adds a process with default attributes to `scope`.
    pub fn add_process(&mut self, scope: Scope, name: impl Into<String>) -> VertexId {
        self.graph.add_vertex(scope, name, ProcessAttrs::default())
    }

    /// Adds a process with explicit attributes to `scope`.
    pub fn add_process_with(
        &mut self,
        scope: Scope,
        name: impl Into<String>,
        attrs: ProcessAttrs,
    ) -> VertexId {
        self.graph.add_vertex(scope, name, attrs)
    }

    /// Adds an interface (a hierarchical process with alternative
    /// refinements) to `scope`.
    pub fn add_interface(&mut self, scope: Scope, name: impl Into<String>) -> InterfaceId {
        self.graph.add_interface(scope, name)
    }

    /// Declares a port on an interface.
    pub fn add_port(
        &mut self,
        interface: InterfaceId,
        name: impl Into<String>,
        direction: PortDirection,
    ) -> PortId {
        self.graph.add_port(interface, name, direction)
    }

    /// Adds an alternative cluster refining `interface`.
    pub fn add_cluster(&mut self, interface: InterfaceId, name: impl Into<String>) -> ClusterId {
        self.graph.add_cluster(interface, name)
    }

    /// Maps a port of the cluster's interface onto a member node.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::map_port`].
    pub fn map_port(
        &mut self,
        cluster: ClusterId,
        port: PortId,
        target: PortTarget,
    ) -> Result<(), HgraphError> {
        self.graph.map_port(cluster, port, target)
    }

    /// Adds a dependence edge between two operations of the same scope.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::add_edge`].
    pub fn add_dependence(
        &mut self,
        from: impl Into<Endpoint>,
        to: impl Into<Endpoint>,
    ) -> Result<flexplore_hgraph::EdgeId, HgraphError> {
        self.graph.add_edge(from, to, DataDep)
    }

    /// Convenience builder for the ubiquitous "stage with alternatives"
    /// pattern: adds an interface with one `in` and one `out` port and one
    /// single-process cluster per alternative name, with both ports mapped
    /// onto the process.
    ///
    /// Returns the interface, its `(in, out)` ports, and the
    /// `(cluster, process)` pair per alternative, in input order.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexplore_spec::ProblemGraph;
    /// use flexplore_hgraph::Scope;
    ///
    /// let mut p = ProblemGraph::new("tv");
    /// let stage = p.add_alternative_stage(Scope::Top, "I_D", &["P_D1", "P_D2", "P_D3"]);
    /// assert_eq!(stage.alternatives.len(), 3);
    /// assert_eq!(p.graph().clusters_of(stage.interface).len(), 3);
    /// ```
    pub fn add_alternative_stage(
        &mut self,
        scope: Scope,
        name: impl Into<String>,
        alternatives: &[&str],
    ) -> AlternativeStage {
        let name = name.into();
        let interface = self.add_interface(scope, &name);
        let input = self.add_port(interface, "in", PortDirection::In);
        let output = self.add_port(interface, "out", PortDirection::Out);
        let mut alts = Vec::with_capacity(alternatives.len());
        for alt in alternatives {
            let cluster = self.add_cluster(interface, format!("{name}_{alt}"));
            let process = self.add_process(cluster.into(), *alt);
            self.map_port(cluster, input, PortTarget::vertex(process))
                .expect("fresh cluster member");
            self.map_port(cluster, output, PortTarget::vertex(process))
                .expect("fresh cluster member");
            alts.push((cluster, process));
        }
        AlternativeStage {
            interface,
            input,
            output,
            alternatives: alts,
        }
    }

    /// Sets the minimal output period of a process.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    pub fn set_period(&mut self, v: VertexId, period: Time) {
        self.graph.vertex_weight_mut(v).period = Some(period);
    }

    /// Marks a process as negligible for utilization estimation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    pub fn set_negligible(&mut self, v: VertexId, negligible: bool) {
        self.graph.vertex_weight_mut(v).negligible = negligible;
    }

    /// Returns the minimal output period of a process, if constrained.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn period(&self, v: VertexId) -> Option<Time> {
        self.graph.vertex_weight(v).period
    }

    /// Returns `true` if the process is excluded from utilization
    /// estimation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn is_negligible(&self, v: VertexId) -> bool {
        self.graph.vertex_weight(v).negligible
    }

    /// Returns the name of a process.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn process_name(&self, v: VertexId) -> &str {
        self.graph.vertex_name(v)
    }

    /// Flattens the problem graph under a cluster selection.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::flatten`].
    pub fn flatten(&self, selection: &Selection) -> Result<FlatGraph, HgraphError> {
        self.graph.flatten(selection)
    }

    /// Enumerates the *elementary cluster-activations* of the problem
    /// graph: every complete selection of exactly one cluster per active
    /// interface.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::enumerate_selections`].
    pub fn elementary_activations(&self) -> Result<Vec<Selection>, HgraphError> {
        self.graph.enumerate_selections()
    }

    /// Validates the structural invariants of the graph.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::validate`].
    pub fn validate(&self) -> Result<(), HgraphError> {
        self.graph.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut p = ProblemGraph::new("p");
        let a = p.add_process(Scope::Top, "a");
        assert_eq!(p.process_name(a), "a");
        assert_eq!(p.period(a), None);
        assert!(!p.is_negligible(a));
        p.set_period(a, Time::from_ns(100));
        p.set_negligible(a, true);
        assert_eq!(p.period(a), Some(Time::from_ns(100)));
        assert!(p.is_negligible(a));
    }

    #[test]
    fn attrs_constructor() {
        let mut p = ProblemGraph::new("p");
        let v = p.add_process_with(
            Scope::Top,
            "out",
            ProcessAttrs::new().with_period(Time::from_ns(240)),
        );
        assert_eq!(p.period(v), Some(Time::from_ns(240)));
    }

    #[test]
    fn elementary_activations_enumerate_alternatives() {
        let mut p = ProblemGraph::new("p");
        let i = p.add_interface(Scope::Top, "I");
        for k in 0..3 {
            let c = p.add_cluster(i, format!("c{k}"));
            p.add_process(c.into(), format!("v{k}"));
        }
        assert_eq!(p.elementary_activations().unwrap().len(), 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn dependences_flatten_through_ports() {
        let mut p = ProblemGraph::new("p");
        let src = p.add_process(Scope::Top, "src");
        let i = p.add_interface(Scope::Top, "I");
        let port = p.add_port(i, "in", PortDirection::In);
        let c = p.add_cluster(i, "c");
        let inner = p.add_process(c.into(), "inner");
        p.map_port(c, port, PortTarget::vertex(inner)).unwrap();
        p.add_dependence(src, (i, port)).unwrap();
        let sel = Selection::new().with(i, c);
        let flat = p.flatten(&sel).unwrap();
        assert_eq!(flat.edges[0].from, src);
        assert_eq!(flat.edges[0].to, inner);
    }
    #[test]
    fn alternative_stage_builder() {
        let mut p = ProblemGraph::new("p");
        let src = p.add_process(Scope::Top, "src");
        let stage = p.add_alternative_stage(Scope::Top, "I", &["a", "b"]);
        p.add_dependence(src, (stage.interface, stage.input))
            .unwrap();
        assert!(p.validate().is_ok());
        assert_eq!(stage.alternatives.len(), 2);
        // Flatten through each alternative.
        for &(cluster, process) in &stage.alternatives {
            let sel = Selection::new().with(stage.interface, cluster);
            let flat = p.flatten(&sel).unwrap();
            assert!(flat.contains(process));
            assert_eq!(flat.edges[0].to, process);
        }
        assert_eq!(p.elementary_activations().unwrap().len(), 2);
    }
}
