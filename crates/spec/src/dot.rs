//! Graphviz export of whole specification graphs (the Fig. 2 view).
//!
//! Renders the problem graph on the left, the architecture graph on the
//! right, and the mapping edges as dotted arrows between them — the way
//! the paper draws specification graphs.

use crate::spec::SpecificationGraph;
use flexplore_hgraph::{NodeRef, Scope};
use std::fmt::Write as _;

impl SpecificationGraph {
    /// Renders the complete specification graph (problem graph,
    /// architecture graph, mapping edges) as a Graphviz DOT document.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexplore_spec::{ArchitectureGraph, Cost, ProblemGraph, SpecificationGraph};
    /// use flexplore_hgraph::Scope;
    /// use flexplore_sched::Time;
    ///
    /// # fn main() -> Result<(), flexplore_spec::SpecError> {
    /// let mut p = ProblemGraph::new("p");
    /// let t = p.add_process(Scope::Top, "task");
    /// let mut a = ArchitectureGraph::new("a");
    /// let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(100));
    /// let mut spec = SpecificationGraph::new("demo", p, a);
    /// spec.add_mapping(t, cpu, Time::from_ns(10))?;
    /// let dot = spec.to_dot();
    /// assert!(dot.contains("subgraph cluster_problem"));
    /// assert!(dot.contains("style=dotted"));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(self.name()));
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  compound=true;");

        let _ = writeln!(out, "  subgraph cluster_problem {{");
        let _ = writeln!(out, "    label=\"problem graph\";");
        write_side(&mut out, SideView::Problem(self), Scope::Top, 2);
        let _ = writeln!(out, "  }}");

        let _ = writeln!(out, "  subgraph cluster_architecture {{");
        let _ = writeln!(out, "    label=\"architecture graph\";");
        write_side(&mut out, SideView::Architecture(self), Scope::Top, 2);
        let _ = writeln!(out, "  }}");

        // Internal edges of both graphs.
        for side in [SideView::Problem(self), SideView::Architecture(self)] {
            let graph_edges: Vec<(String, String)> = side.edges();
            for (from, to) in graph_edges {
                let _ = writeln!(out, "  {from} -> {to};");
            }
        }

        // Mapping edges, dotted with latency labels.
        for m in self.mapping_ids() {
            let mapping = self.mapping(m);
            let from = format!(
                "\"P:{}\"",
                escape(self.problem().process_name(mapping.process))
            );
            let to = format!(
                "\"A:{}\"",
                escape(self.architecture().resource_name(mapping.resource))
            );
            let _ = writeln!(
                out,
                "  {from} -> {to} [style=dotted, label=\"{}\"];",
                mapping.latency
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Which side of the specification a rendering pass walks.
#[derive(Clone, Copy)]
enum SideView<'a> {
    Problem(&'a SpecificationGraph),
    Architecture(&'a SpecificationGraph),
}

impl SideView<'_> {
    fn prefix(self) -> &'static str {
        match self {
            SideView::Problem(_) => "P",
            SideView::Architecture(_) => "A",
        }
    }

    fn node_id(self, node: NodeRef) -> String {
        let name = match (self, node) {
            (SideView::Problem(s), NodeRef::Vertex(v)) => s.problem().graph().vertex_name(v),
            (SideView::Problem(s), NodeRef::Interface(i)) => s.problem().graph().interface_name(i),
            (SideView::Architecture(s), NodeRef::Vertex(v)) => {
                s.architecture().graph().vertex_name(v)
            }
            (SideView::Architecture(s), NodeRef::Interface(i)) => {
                s.architecture().graph().interface_name(i)
            }
        };
        format!("\"{}:{}\"", self.prefix(), escape(name))
    }

    fn edges(self) -> Vec<(String, String)> {
        fn graph_edges<N, E>(
            g: &flexplore_hgraph::HierarchicalGraph<N, E>,
        ) -> Vec<(NodeRef, NodeRef)> {
            g.edge_ids()
                .map(|e| {
                    let (from, to) = g.edge_endpoints(e);
                    (from.node, to.node)
                })
                .collect()
        }
        let pairs = match self {
            SideView::Problem(s) => graph_edges(s.problem().graph()),
            SideView::Architecture(s) => graph_edges(s.architecture().graph()),
        };
        pairs
            .into_iter()
            .map(|(from, to)| (self.node_id(from), self.node_id(to)))
            .collect()
    }
}

fn write_side(out: &mut String, side: SideView<'_>, scope: Scope, depth: usize) {
    let indent = "  ".repeat(depth);
    let (vertices, interfaces): (Vec<NodeRef>, Vec<_>) = match side {
        SideView::Problem(s) => (
            s.problem()
                .graph()
                .vertices_in(scope)
                .map(NodeRef::Vertex)
                .collect(),
            s.problem().graph().interfaces_in(scope).collect(),
        ),
        SideView::Architecture(s) => (
            s.architecture()
                .graph()
                .vertices_in(scope)
                .map(NodeRef::Vertex)
                .collect(),
            s.architecture().graph().interfaces_in(scope).collect(),
        ),
    };
    for v in vertices {
        let _ = writeln!(out, "{indent}{} [shape=ellipse];", side.node_id(v));
    }
    for i in interfaces {
        let _ = writeln!(
            out,
            "{indent}{} [shape=doubleoctagon];",
            side.node_id(NodeRef::Interface(i))
        );
        let clusters: Vec<_> = match side {
            SideView::Problem(s) => s.problem().graph().clusters_of(i).to_vec(),
            SideView::Architecture(s) => s.architecture().graph().clusters_of(i).to_vec(),
        };
        for c in clusters {
            let name = match side {
                SideView::Problem(s) => s.problem().graph().cluster_name(c).to_owned(),
                SideView::Architecture(s) => s.architecture().graph().cluster_name(c).to_owned(),
            };
            let _ = writeln!(
                out,
                "{indent}subgraph \"cluster_{}_{}\" {{",
                side.prefix(),
                escape(&name)
            );
            let _ = writeln!(out, "{indent}  label=\"{}\";", escape(&name));
            write_side(out, side, Scope::Cluster(c), depth + 1);
            let _ = writeln!(out, "{indent}}}");
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::architecture::ArchitectureGraph;
    use crate::attrs::Cost;
    use crate::problem::ProblemGraph;
    use crate::spec::SpecificationGraph;
    use flexplore_hgraph::Scope;
    use flexplore_sched::Time;

    fn sample() -> SpecificationGraph {
        let mut p = ProblemGraph::new("p");
        let a = p.add_process(Scope::Top, "a");
        let i = p.add_interface(Scope::Top, "I");
        let c = p.add_cluster(i, "alt");
        let inner = p.add_process(c.into(), "inner");
        let mut arch = ArchitectureGraph::new("arch");
        let cpu = arch.add_resource(Scope::Top, "cpu", Cost::new(1));
        let bus = arch.add_bus(Scope::Top, "bus", Cost::new(1));
        arch.connect(cpu, bus).unwrap();
        let mut spec = SpecificationGraph::new("sample", p, arch);
        spec.add_mapping(a, cpu, Time::from_ns(3)).unwrap();
        spec.add_mapping(inner, cpu, Time::from_ns(4)).unwrap();
        spec
    }

    #[test]
    fn dot_contains_both_sides_and_mappings() {
        let dot = sample().to_dot();
        assert!(dot.contains("subgraph cluster_problem"));
        assert!(dot.contains("subgraph cluster_architecture"));
        assert!(dot.contains("\"P:a\""));
        assert!(dot.contains("\"A:cpu\""));
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("label=\"3ns\""));
        // Architecture edge cpu -> bus appears with prefixed ids.
        assert!(dot.contains("\"A:cpu\" -> \"A:bus\""));
    }

    #[test]
    fn braces_balance() {
        let dot = sample().to_dot();
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn nested_problem_clusters_render() {
        let dot = sample().to_dot();
        assert!(dot.contains("cluster_P_alt"));
        assert!(dot.contains("\"P:inner\""));
    }
}
