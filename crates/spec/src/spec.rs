//! The specification graph `G_S = (G_P, G_A, E_M)`.
//!
//! A specification graph combines the hierarchical [`ProblemGraph`], the
//! hierarchical [`ArchitectureGraph`], and the user-defined **mapping
//! edges** `E_M` — the "can be implemented by" relation linking leaves of
//! the problem graph to leaves of the architecture graph, annotated with
//! execution latencies (Section 2 of the paper, after Blickle et al.).

use crate::architecture::ArchitectureGraph;
use crate::attrs::{Cost, ResourceKind};
use crate::error::SpecError;
use crate::problem::ProblemGraph;
use flexplore_hgraph::{ClusterId, InterfaceId, Selection, VertexId};
use flexplore_sched::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a mapping edge (`e ∈ E_M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MappingId(u32);

impl MappingId {
    /// Returns the raw arena index of this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A mapping edge: process `process` can be implemented by functional
/// resource `resource` with core execution time `latency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// The problem-graph leaf being implemented.
    pub process: VertexId,
    /// The architecture-graph leaf implementing it.
    pub resource: VertexId,
    /// Core execution time of `process` on `resource`.
    pub latency: Time,
}

/// A (possibly partial) allocation of architecture resources: the set of
/// top-level resources and reconfigurable-design clusters a design point
/// pays for.
///
/// The paper derives possible resource allocations over exactly these
/// elements: *"only leaves `v ∈ G_A.V` of the top-level architecture graph
/// or whole clusters of the architecture graph are considered."*
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceAllocation {
    /// Allocated top-level resources (functional and communication).
    pub vertices: BTreeSet<VertexId>,
    /// Allocated design clusters of reconfigurable devices.
    pub clusters: BTreeSet<ClusterId>,
}

impl ResourceAllocation {
    /// Creates an empty allocation.
    #[must_use]
    pub fn new() -> Self {
        ResourceAllocation::default()
    }

    /// Builder: allocates a top-level resource.
    #[must_use]
    pub fn with_vertex(mut self, v: VertexId) -> Self {
        self.vertices.insert(v);
        self
    }

    /// Builder: allocates a design cluster.
    #[must_use]
    pub fn with_cluster(mut self, c: ClusterId) -> Self {
        self.clusters.insert(c);
        self
    }

    /// Total allocation cost: the sum of the costs of all allocated
    /// resources, with each design cluster contributing the cost of its
    /// leaves.
    ///
    /// This is the paper's *allocation cost model*
    /// `c_impl(α) = Σ realization costs of resources in α`.
    /// Ids the architecture does not have (possible in allocations built
    /// from untrusted input) contribute nothing; `flexplore lint` reports
    /// the underlying defect.
    #[must_use]
    pub fn cost(&self, architecture: &ArchitectureGraph) -> Cost {
        let graph = architecture.graph();
        let vertex_cost: Cost = self
            .vertices
            .iter()
            .filter(|v| v.index() < graph.vertex_count())
            .map(|&v| architecture.cost(v))
            .sum();
        let cluster_cost: Cost = self
            .clusters
            .iter()
            .filter(|c| c.index() < graph.cluster_count())
            .map(|&c| architecture.cluster_cost(c))
            .sum();
        vertex_cost + cluster_cost
    }

    /// The set of concrete architecture vertices available somewhere in
    /// time under this allocation: the allocated top-level vertices plus
    /// the leaves of every allocated design cluster.
    /// Unknown cluster ids contribute no leaves (see [`Self::cost`]).
    #[must_use]
    pub fn available_vertices(&self, architecture: &ArchitectureGraph) -> BTreeSet<VertexId> {
        let graph = architecture.graph();
        let mut out = self.vertices.clone();
        for &c in &self.clusters {
            if c.index() < graph.cluster_count() {
                out.extend(graph.leaves_of_cluster(c));
            }
        }
        out
    }

    /// Returns `true` if nothing is allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.clusters.is_empty()
    }

    /// Returns `true` if `other` allocates a subset of this allocation.
    #[must_use]
    pub fn contains(&self, other: &ResourceAllocation) -> bool {
        other.vertices.is_subset(&self.vertices) && other.clusters.is_subset(&self.clusters)
    }

    /// Human-readable resource list (e.g. `µP2, D3, C1`), using the
    /// architecture graph for names.
    #[must_use]
    pub fn display_names(&self, architecture: &ArchitectureGraph) -> String {
        let graph = architecture.graph();
        let mut names: Vec<&str> = self
            .vertices
            .iter()
            .filter(|v| v.index() < graph.vertex_count())
            .map(|&v| architecture.resource_name(v))
            .collect();
        for &c in &self.clusters {
            if c.index() >= graph.cluster_count() {
                continue;
            }
            for v in graph.leaves_of_cluster(c) {
                names.push(architecture.resource_name(v));
            }
        }
        names.join(", ")
    }
}

/// A *mode*: the cluster selections of both graphs at one instant of time.
///
/// Adaptive systems switch between modes at run time; each mode has its own
/// flattened problem graph, architecture configuration, and binding.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mode {
    /// Selected problem-graph clusters (the elementary cluster-activation).
    pub problem: Selection,
    /// Selected architecture-graph clusters (device configurations).
    pub architecture: Selection,
}

impl Mode {
    /// Creates a mode from the two selections.
    #[must_use]
    pub fn new(problem: Selection, architecture: Selection) -> Self {
        Mode {
            problem,
            architecture,
        }
    }
}

/// Size summary of a specification graph (see
/// [`SpecificationGraph::statistics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecStatistics {
    /// Leaf processes of the problem graph (all hierarchy levels).
    pub processes: usize,
    /// Interfaces of the problem graph.
    pub problem_interfaces: usize,
    /// Alternative clusters of the problem graph.
    pub problem_clusters: usize,
    /// Dependence edges of the problem graph.
    pub dependences: usize,
    /// Resources of the architecture graph (all hierarchy levels).
    pub resources: usize,
    /// Reconfigurable devices (architecture interfaces).
    pub devices: usize,
    /// Loadable designs (architecture clusters).
    pub designs: usize,
    /// Physical links of the architecture graph.
    pub links: usize,
    /// Mapping edges.
    pub mappings: usize,
    /// `|V_S|` — the raw search space is `2^{vertex_set_size}`.
    pub vertex_set_size: usize,
}

/// The complete system specification: problem graph, architecture graph and
/// mapping edges.
///
/// # Examples
///
/// ```
/// use flexplore_spec::{ArchitectureGraph, Cost, ProblemGraph, SpecificationGraph};
/// use flexplore_hgraph::Scope;
/// use flexplore_sched::Time;
///
/// # fn main() -> Result<(), flexplore_spec::SpecError> {
/// let mut problem = ProblemGraph::new("p");
/// let task = problem.add_process(Scope::Top, "P_U1");
/// let mut arch = ArchitectureGraph::new("a");
/// let up = arch.add_resource(Scope::Top, "uP", Cost::new(100));
/// let mut spec = SpecificationGraph::new("tv", problem, arch);
/// let m = spec.add_mapping(task, up, Time::from_ns(40))?;
/// assert_eq!(spec.mapping(m).latency, Time::from_ns(40));
/// assert_eq!(spec.mappings_of(task).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecificationGraph {
    name: String,
    problem: ProblemGraph,
    architecture: ArchitectureGraph,
    mappings: Vec<Mapping>,
}

impl SpecificationGraph {
    /// Creates a specification graph from its two hierarchical graphs.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        problem: ProblemGraph,
        architecture: ArchitectureGraph,
    ) -> Self {
        SpecificationGraph {
            name: name.into(),
            problem,
            architecture,
            mappings: Vec::new(),
        }
    }

    /// Returns the display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the problem graph.
    #[must_use]
    pub fn problem(&self) -> &ProblemGraph {
        &self.problem
    }

    /// Returns a mutable reference to the problem graph.
    pub fn problem_mut(&mut self) -> &mut ProblemGraph {
        &mut self.problem
    }

    /// Returns the architecture graph.
    #[must_use]
    pub fn architecture(&self) -> &ArchitectureGraph {
        &self.architecture
    }

    /// Returns a mutable reference to the architecture graph.
    pub fn architecture_mut(&mut self) -> &mut ArchitectureGraph {
        &mut self.architecture
    }

    /// Adds a mapping edge: `process` *can be implemented by* `resource`
    /// with the given core execution time.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::MappingEndpoint`] if `process` is not a vertex
    /// of the problem graph, if `resource` is not a vertex of the
    /// architecture graph, or if `resource` is a communication resource
    /// (processes execute on functional resources only).
    pub fn add_mapping(
        &mut self,
        process: VertexId,
        resource: VertexId,
        latency: Time,
    ) -> Result<MappingId, SpecError> {
        if process.index() >= self.problem.graph().vertex_count() {
            return Err(SpecError::MappingEndpoint {
                process,
                resource,
                reason: "process is not a vertex of the problem graph",
            });
        }
        if resource.index() >= self.architecture.graph().vertex_count() {
            return Err(SpecError::MappingEndpoint {
                process,
                resource,
                reason: "resource is not a vertex of the architecture graph",
            });
        }
        if self.architecture.kind(resource) != ResourceKind::Functional {
            return Err(SpecError::MappingEndpoint {
                process,
                resource,
                reason: "mapping targets must be functional resources",
            });
        }
        let id = MappingId(self.mappings.len() as u32);
        self.mappings.push(Mapping {
            process,
            resource,
            latency,
        });
        Ok(id)
    }

    /// Returns a mapping edge by id.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not an id of this specification.
    #[must_use]
    pub fn mapping(&self, m: MappingId) -> &Mapping {
        &self.mappings[m.index()]
    }

    /// Returns the number of mapping edges.
    #[must_use]
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Iterates over all mapping-edge ids.
    pub fn mapping_ids(&self) -> impl ExactSizeIterator<Item = MappingId> + '_ {
        (0..self.mappings.len() as u32).map(MappingId)
    }

    /// Iterates over the mapping edges leaving `process`.
    pub fn mappings_of(&self, process: VertexId) -> impl Iterator<Item = MappingId> + '_ {
        self.mapping_ids()
            .filter(move |&m| self.mappings[m.index()].process == process)
    }

    /// The set `R_i` of resources reachable from `process` via mapping
    /// edges (Section 4 of the paper).
    #[must_use]
    pub fn reachable_resources(&self, process: VertexId) -> BTreeSet<VertexId> {
        self.mappings_of(process)
            .map(|m| self.mappings[m.index()].resource)
            .collect()
    }

    /// Problem-graph leaves with no mapping edge at all; such processes can
    /// never be activated in any feasible implementation.
    #[must_use]
    pub fn unmapped_processes(&self) -> Vec<VertexId> {
        self.problem
            .graph()
            .leaves()
            .filter(|&v| self.mappings_of(v).next().is_none())
            .collect()
    }

    /// Completes a partial architecture selection: every reconfigurable
    /// device missing from `partial` gets its first cluster.
    ///
    /// Flattening requires a choice for *every* device; modes that do not
    /// use a device can hold an arbitrary configuration there (its design
    /// vertex is simply not allocated, so reachability and binding are
    /// unaffected).
    #[must_use]
    pub fn complete_arch_selection(&self, partial: &Selection) -> Selection {
        let mut sel = partial.clone();
        let graph = self.architecture.graph();
        for i in graph.interface_ids() {
            if sel.get(i).is_none() {
                if let Some(&first) = graph.clusters_of(i).first() {
                    sel.select(i, first);
                }
            }
        }
        sel
    }

    /// The reconfigurable-device interfaces of the architecture graph.
    pub fn devices(&self) -> impl Iterator<Item = InterfaceId> + '_ {
        self.architecture.graph().interface_ids()
    }

    /// `|V_S|`: the number of vertices of the specification graph in the
    /// flat representation `G_S = (V_S, E_S)` — all non-hierarchical
    /// vertices, interfaces and clusters of both graphs. The paper sizes
    /// the raw search space as `2^{|V_S|}`.
    #[must_use]
    pub fn vertex_set_size(&self) -> usize {
        let p = self.problem.graph();
        let a = self.architecture.graph();
        p.vertex_count()
            + p.interface_count()
            + p.cluster_count()
            + a.vertex_count()
            + a.interface_count()
            + a.cluster_count()
    }

    /// A summary of the specification's size for reports and tooling.
    #[must_use]
    pub fn statistics(&self) -> SpecStatistics {
        let p = self.problem.graph();
        let a = self.architecture.graph();
        SpecStatistics {
            processes: p.vertex_count(),
            problem_interfaces: p.interface_count(),
            problem_clusters: p.cluster_count(),
            dependences: p.edge_count(),
            resources: a.vertex_count(),
            devices: a.interface_count(),
            designs: a.cluster_count(),
            links: a.edge_count(),
            mappings: self.mappings.len(),
            vertex_set_size: self.vertex_set_size(),
        }
    }

    /// Validates both graphs and every mapping edge.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.problem.validate().map_err(SpecError::Problem)?;
        self.architecture
            .validate()
            .map_err(SpecError::Architecture)?;
        for m in &self.mappings {
            if m.process.index() >= self.problem.graph().vertex_count() {
                return Err(SpecError::MappingEndpoint {
                    process: m.process,
                    resource: m.resource,
                    reason: "process is not a vertex of the problem graph",
                });
            }
            if m.resource.index() >= self.architecture.graph().vertex_count() {
                return Err(SpecError::MappingEndpoint {
                    process: m.process,
                    resource: m.resource,
                    reason: "resource is not a vertex of the architecture graph",
                });
            }
            if self.architecture.kind(m.resource) != ResourceKind::Functional {
                return Err(SpecError::MappingEndpoint {
                    process: m.process,
                    resource: m.resource,
                    reason: "mapping targets must be functional resources",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_hgraph::Scope;

    fn small_spec() -> (SpecificationGraph, VertexId, VertexId, VertexId) {
        let mut p = ProblemGraph::new("p");
        let t1 = p.add_process(Scope::Top, "t1");
        let t2 = p.add_process(Scope::Top, "t2");
        p.add_dependence(t1, t2).unwrap();
        let mut a = ArchitectureGraph::new("a");
        let r1 = a.add_resource(Scope::Top, "r1", Cost::new(100));
        let _bus = a.add_bus(Scope::Top, "bus", Cost::new(10));
        let mut spec = SpecificationGraph::new("s", p, a);
        spec.add_mapping(t1, r1, Time::from_ns(5)).unwrap();
        spec.add_mapping(t2, r1, Time::from_ns(7)).unwrap();
        (spec, t1, t2, r1)
    }

    #[test]
    fn mapping_queries() {
        let (spec, t1, t2, r1) = small_spec();
        assert_eq!(spec.mapping_count(), 2);
        assert_eq!(spec.mappings_of(t1).count(), 1);
        assert_eq!(spec.reachable_resources(t2), BTreeSet::from([r1]));
        assert!(spec.unmapped_processes().is_empty());
        assert!(spec.validate().is_ok());
        assert_eq!(spec.name(), "s");
    }

    #[test]
    fn mapping_to_bus_is_rejected() {
        let (mut spec, t1, _, _) = small_spec();
        let bus = spec
            .architecture()
            .graph()
            .vertex_by_name(Scope::Top, "bus")
            .unwrap();
        let err = spec.add_mapping(t1, bus, Time::from_ns(1)).unwrap_err();
        assert!(matches!(err, SpecError::MappingEndpoint { .. }));
    }

    #[test]
    fn out_of_range_endpoints_are_rejected() {
        let (mut spec, _, _, r1) = small_spec();
        let bogus = VertexId::from_index(999);
        assert!(spec.add_mapping(bogus, r1, Time::ZERO).is_err());
    }

    #[test]
    fn validate_rejects_forged_out_of_range_endpoints() {
        // `add_mapping` bounds-checks, so only deserialized specs can hold
        // out-of-range endpoints; push directly to simulate one.
        let (mut spec, t1, _, r1) = small_spec();
        spec.mappings.push(Mapping {
            process: t1,
            resource: VertexId::from_index(999),
            latency: Time::from_ns(1),
        });
        assert!(matches!(
            spec.validate(),
            Err(SpecError::MappingEndpoint { .. })
        ));
        spec.mappings.pop();
        spec.mappings.push(Mapping {
            process: VertexId::from_index(999),
            resource: r1,
            latency: Time::from_ns(1),
        });
        assert!(matches!(
            spec.validate(),
            Err(SpecError::MappingEndpoint { .. })
        ));
    }

    #[test]
    fn compiling_a_forged_spec_does_not_panic() {
        let (mut spec, _, _, r1) = small_spec();
        spec.mappings.push(Mapping {
            process: VertexId::from_index(999),
            resource: r1,
            latency: Time::from_ns(1),
        });
        let compiled = crate::compiled::CompiledSpec::new(&spec);
        // The forged edge is simply absent from the tables.
        let total: usize = spec
            .problem()
            .graph()
            .vertex_ids()
            .map(|v| compiled.mappings_of(v).len())
            .sum();
        assert_eq!(total, 2);
        assert!(crate::compiled::CompiledSpec::try_new(&spec).is_err());
        spec.mappings.pop();
        assert!(crate::compiled::CompiledSpec::try_new(&spec).is_ok());
    }

    #[test]
    fn unmapped_processes_are_reported() {
        let mut p = ProblemGraph::new("p");
        let t = p.add_process(Scope::Top, "t");
        let a = ArchitectureGraph::new("a");
        let spec = SpecificationGraph::new("s", p, a);
        assert_eq!(spec.unmapped_processes(), vec![t]);
    }

    #[test]
    fn allocation_cost_sums_vertices_and_clusters() {
        let mut a = ArchitectureGraph::new("a");
        let up = a.add_resource(Scope::Top, "uP", Cost::new(100));
        let bus = a.add_bus(Scope::Top, "C1", Cost::new(10));
        let fpga = a.add_interface(Scope::Top, "FPGA");
        let d = a.add_design(fpga, "cfg", "D3", Cost::new(60)).unwrap();
        let alloc = ResourceAllocation::new()
            .with_vertex(up)
            .with_vertex(bus)
            .with_cluster(d.cluster);
        assert_eq!(alloc.cost(&a), Cost::new(170));
        let avail = alloc.available_vertices(&a);
        assert!(avail.contains(&d.design));
        assert!(avail.contains(&up));
        assert_eq!(avail.len(), 3);
        assert!(!alloc.is_empty());
        assert!(alloc.contains(&ResourceAllocation::new().with_vertex(up)));
        assert!(!ResourceAllocation::new().contains(&alloc));
        let names = alloc.display_names(&a);
        assert!(names.contains("uP") && names.contains("D3"));
    }

    #[test]
    fn complete_arch_selection_fills_devices() {
        let mut a = ArchitectureGraph::new("a");
        let fpga = a.add_interface(Scope::Top, "FPGA");
        let d1 = a.add_design(fpga, "cfg1", "D1", Cost::new(1)).unwrap();
        let _d2 = a.add_design(fpga, "cfg2", "D2", Cost::new(2)).unwrap();
        let spec = SpecificationGraph::new("s", ProblemGraph::new("p"), a);
        let sel = spec.complete_arch_selection(&Selection::new());
        assert_eq!(sel.get(fpga), Some(d1.cluster));
        // Explicit choices are preserved.
        let d2c = spec.architecture().graph().clusters_of(fpga)[1];
        let sel = spec.complete_arch_selection(&Selection::new().with(fpga, d2c));
        assert_eq!(sel.get(fpga), Some(d2c));
    }

    #[test]
    fn vertex_set_size_counts_everything() {
        let (spec, _, _, _) = small_spec();
        // problem: 2 vertices; architecture: 2 vertices.
        assert_eq!(spec.vertex_set_size(), 4);
    }
    #[test]
    fn statistics_summarize_the_graphs() {
        let (spec, _, _, _) = small_spec();
        let stats = spec.statistics();
        assert_eq!(stats.processes, 2);
        assert_eq!(stats.dependences, 1);
        assert_eq!(stats.resources, 2);
        assert_eq!(stats.mappings, 2);
        assert_eq!(stats.vertex_set_size, spec.vertex_set_size());
        assert_eq!(stats.devices, 0);
    }
}
