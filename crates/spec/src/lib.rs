//! Specification graphs for system-level design — problem graph,
//! architecture graph and mapping edges, with hierarchical timed-activation
//! semantics.
//!
//! This crate implements Section 2 of *"System Design for Flexibility"*
//! (Haubelt, Teich, Richter, Ernst — DATE 2002): the specification graph
//! `G_S = (G_P, G_A, E_M)` where
//!
//! * [`ProblemGraph`] models the required behavior as a hierarchical graph
//!   whose interfaces have *alternative* refinements (Fig. 1's TV decoder
//!   with three decryption and two uncompression algorithms),
//! * [`ArchitectureGraph`] models the class of possible platforms,
//!   including reconfigurable devices as interfaces whose clusters are
//!   loadable designs (Fig. 2's FPGA), and
//! * mapping edges `E_M` record the "can be implemented by" relation with
//!   core execution times (Table 1).
//!
//! The crate also provides the semantic core the exploration builds on:
//! [`Mode`]s (per-instant cluster selections of both graphs),
//! [`ResourceAllocation`]s with the paper's allocation-cost model, and the
//! declarative feasibility checker
//! [`SpecificationGraph::check_binding`] implementing the three
//! requirements on feasible timed bindings.
//!
//! # Examples
//!
//! Build a minimal specification and verify a binding:
//!
//! ```
//! use flexplore_spec::{
//!     ArchitectureGraph, Binding, Cost, Mode, ProblemGraph, SpecificationGraph,
//! };
//! use flexplore_hgraph::Scope;
//! use flexplore_sched::Time;
//! use std::collections::BTreeSet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut problem = ProblemGraph::new("p");
//! let src = problem.add_process(Scope::Top, "src");
//! let dst = problem.add_process(Scope::Top, "dst");
//! problem.add_dependence(src, dst)?;
//!
//! let mut arch = ArchitectureGraph::new("a");
//! let cpu = arch.add_resource(Scope::Top, "cpu", Cost::new(100));
//!
//! let mut spec = SpecificationGraph::new("mini", problem, arch);
//! let m_src = spec.add_mapping(src, cpu, Time::from_ns(10))?;
//! let m_dst = spec.add_mapping(dst, cpu, Time::from_ns(20))?;
//!
//! let binding = Binding::new().with(src, m_src).with(dst, m_dst);
//! let allocated = BTreeSet::from([cpu]);
//! spec.check_binding(&Mode::default(), &allocated, &binding)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod architecture;
mod attrs;
mod compiled;
mod dot;
mod error;
mod feasibility;
mod fingerprint;
mod problem;
mod spec;
mod unitmask;

pub use architecture::{ArchitectureGraph, Design, Link};
pub use attrs::{Cost, ProcessAttrs, ResourceAttrs, ResourceKind};
pub use compiled::{
    allocatable_units, allocation_from_units, CompiledActivation, CompiledSpec, Unit, UnitMasks,
};
pub use error::{BindingViolation, SpecError};
pub use feasibility::Binding;
pub use fingerprint::{fingerprint, Fingerprint, SpecSignature, UnitSig};
pub use problem::{AlternativeStage, DataDep, ProblemGraph};
pub use spec::{Mapping, MappingId, Mode, ResourceAllocation, SpecStatistics, SpecificationGraph};
pub use unitmask::{UnitMask, MAX_UNITS, UNIT_MASK_WORDS};
