//! Attributes annotated to specification-graph components.
//!
//! The paper: *"Additional parameters, like priorities, power consumption,
//! latencies, etc., which are used for formulating implementational and
//! functional constraints are annotated to the components of `G_S`."*
//! We carry exactly the attributes the evaluation uses: allocation costs on
//! resources, execution latencies on mapping edges, minimal output periods
//! and utilization-negligibility on processes.

use flexplore_sched::Time;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Allocation cost of a resource, in the paper's dollar units.
///
/// # Examples
///
/// ```
/// use flexplore_spec::Cost;
///
/// let total: Cost = [Cost::new(100), Cost::new(10), Cost::new(60)]
///     .into_iter()
///     .sum();
/// assert_eq!(total, Cost::new(170));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);

    /// Creates a cost from a dollar amount.
    #[must_use]
    pub const fn new(dollars: u64) -> Self {
        Cost(dollars)
    }

    /// Returns the dollar amount.
    #[must_use]
    pub const fn dollars(self) -> u64 {
        self.0
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl From<u64> for Cost {
    fn from(dollars: u64) -> Self {
        Cost(dollars)
    }
}

/// Attributes of a problem-graph process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProcessAttrs {
    /// Minimal output period, if the process is timing-constrained.
    ///
    /// In the case study, `P_D` carries 240 ns and `P_U1`/`P_U2` carry
    /// 300 ns: *"Timing constraints […] are given by the minimal periods of
    /// the output processes."*
    pub period: Option<Time>,
    /// Excluded from utilization estimation.
    ///
    /// Section 5 neglects the authentication process (runs once at start-up)
    /// and the TV controller process (≈0.01 % of calls) when estimating
    /// utilization; this flag marks such processes.
    pub negligible: bool,
}

impl ProcessAttrs {
    /// Attributes of an unconstrained, utilization-relevant process.
    #[must_use]
    pub fn new() -> Self {
        ProcessAttrs::default()
    }

    /// Builder: sets the minimal output period.
    #[must_use]
    pub fn with_period(mut self, period: Time) -> Self {
        self.period = Some(period);
        self
    }

    /// Builder: marks the process as negligible for utilization estimation.
    #[must_use]
    pub fn negligible(mut self) -> Self {
        self.negligible = true;
        self
    }
}

/// Whether a resource executes processes or carries communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// A functional resource (processor, ASIC, FPGA design slot): processes
    /// can be bound to it via mapping edges.
    Functional,
    /// A communication resource (bus): carries data between functional
    /// resources it is connected to, but never executes processes.
    Communication,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Functional => f.write_str("functional"),
            ResourceKind::Communication => f.write_str("communication"),
        }
    }
}

/// Attributes of an architecture-graph resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceAttrs {
    /// Allocation cost of the resource.
    pub cost: Cost,
    /// Functional or communication resource.
    pub kind: ResourceKind,
}

impl ResourceAttrs {
    /// Attributes of a functional resource with the given cost.
    #[must_use]
    pub fn functional(cost: Cost) -> Self {
        ResourceAttrs {
            cost,
            kind: ResourceKind::Functional,
        }
    }

    /// Attributes of a communication resource with the given cost.
    #[must_use]
    pub fn communication(cost: Cost) -> Self {
        ResourceAttrs {
            cost,
            kind: ResourceKind::Communication,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic_and_display() {
        let mut c = Cost::new(100);
        c += Cost::new(20);
        assert_eq!(c, Cost::new(120));
        assert_eq!((c + Cost::new(10)).dollars(), 130);
        assert_eq!(c.to_string(), "$120");
        assert_eq!(Cost::from(5u64), Cost::new(5));
        assert_eq!(Cost::ZERO.dollars(), 0);
    }

    #[test]
    fn cost_orders_numerically() {
        assert!(Cost::new(100) < Cost::new(230));
    }

    #[test]
    fn process_attrs_builders() {
        let a = ProcessAttrs::new()
            .with_period(Time::from_ns(240))
            .negligible();
        assert_eq!(a.period, Some(Time::from_ns(240)));
        assert!(a.negligible);
        let d = ProcessAttrs::default();
        assert_eq!(d.period, None);
        assert!(!d.negligible);
    }

    #[test]
    fn resource_attrs_constructors() {
        let f = ResourceAttrs::functional(Cost::new(100));
        assert_eq!(f.kind, ResourceKind::Functional);
        assert_eq!(f.cost, Cost::new(100));
        let c = ResourceAttrs::communication(Cost::new(10));
        assert_eq!(c.kind, ResourceKind::Communication);
        assert_eq!(c.kind.to_string(), "communication");
    }
}
