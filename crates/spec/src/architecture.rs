//! The architecture graph `G_A`: hierarchical model of the class of
//! possible architectures.
//!
//! Functional and communication resources are vertices; physical
//! interconnections are edges; interfaces with alternative clusters model
//! reconfigurable hardware (e.g. an FPGA whose clusters are the designs it
//! can be configured with). All resources are *potentially allocatable*
//! components — which of them are actually allocated is decided by the
//! exploration.

use crate::attrs::{Cost, ResourceAttrs, ResourceKind};
use flexplore_hgraph::{
    ClusterId, Endpoint, HgraphError, HierarchicalGraph, InterfaceId, PortDirection, PortId,
    PortTarget, Scope, Selection, VertexId,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A physical interconnection between two resources.
///
/// Architecture edges are stored directed (like all hierarchical-graph
/// edges) but interpreted as **bidirectional** links by the communication
/// reachability analysis — a bus carries data both ways.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link;

impl std::fmt::Display for Link {
    fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Ok(())
    }
}

/// The hierarchical architecture graph of a specification.
///
/// # Examples
///
/// Modeling Fig. 2 of the paper: a µ-controller, an ASIC and an FPGA, with
/// buses `C1` (µP–FPGA) and `C2` (µP–ASIC):
///
/// ```
/// use flexplore_spec::{ArchitectureGraph, Cost};
/// use flexplore_hgraph::Scope;
///
/// # fn main() -> Result<(), flexplore_hgraph::HgraphError> {
/// let mut a = ArchitectureGraph::new("fig2");
/// let up = a.add_resource(Scope::Top, "uP", Cost::new(100));
/// let asic = a.add_resource(Scope::Top, "A", Cost::new(250));
/// let c1 = a.add_bus(Scope::Top, "C1", Cost::new(10));
/// let c2 = a.add_bus(Scope::Top, "C2", Cost::new(10));
/// let fpga = a.add_interface(Scope::Top, "FPGA");
/// let d3 = a.add_design(fpga, "cfg_D3", "D3", Cost::new(60))?;
/// a.connect(up, c1)?;
/// a.connect_through(c1, fpga)?;
/// a.connect(up, c2)?;
/// a.connect(c2, asic)?;
/// assert_eq!(a.cost(asic), Cost::new(250));
/// assert_eq!(a.cluster_cost(d3.cluster), Cost::new(60));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchitectureGraph {
    graph: HierarchicalGraph<ResourceAttrs, Link>,
}

/// Handle returned by [`ArchitectureGraph::add_design`]: the cluster
/// representing one configuration of a reconfigurable device, and the
/// functional resource vertex inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Design {
    /// The cluster modeling the configuration.
    pub cluster: ClusterId,
    /// The functional resource available while the configuration is loaded.
    pub design: VertexId,
}

impl ArchitectureGraph {
    /// Creates an empty architecture graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ArchitectureGraph {
            graph: HierarchicalGraph::new(name),
        }
    }

    /// Returns the underlying hierarchical graph.
    #[must_use]
    pub fn graph(&self) -> &HierarchicalGraph<ResourceAttrs, Link> {
        &self.graph
    }

    /// Adds a functional resource (processor, ASIC, …) with the given
    /// allocation cost.
    pub fn add_resource(&mut self, scope: Scope, name: impl Into<String>, cost: Cost) -> VertexId {
        self.graph
            .add_vertex(scope, name, ResourceAttrs::functional(cost))
    }

    /// Adds a communication resource (bus) with the given allocation cost.
    pub fn add_bus(&mut self, scope: Scope, name: impl Into<String>, cost: Cost) -> VertexId {
        self.graph
            .add_vertex(scope, name, ResourceAttrs::communication(cost))
    }

    /// Adds a reconfigurable device as an interface; its configurations are
    /// added with [`add_design`](Self::add_design).
    pub fn add_interface(&mut self, scope: Scope, name: impl Into<String>) -> InterfaceId {
        self.graph.add_interface(scope, name)
    }

    /// Declares a port on a reconfigurable device.
    pub fn add_port(
        &mut self,
        interface: InterfaceId,
        name: impl Into<String>,
        direction: PortDirection,
    ) -> PortId {
        self.graph.add_port(interface, name, direction)
    }

    /// Adds one configuration (cluster + contained functional resource) to
    /// a reconfigurable device.
    ///
    /// The device can hold **one** configuration per instant (hierarchical
    /// activation rule 1); allocating several designs means the device is
    /// reconfigured over time, and each design contributes its own
    /// allocation cost (configuration area), matching the case-study cost
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates port-mapping errors if the device declares ports (each
    /// declared port is mapped onto the design vertex).
    pub fn add_design(
        &mut self,
        device: InterfaceId,
        cluster_name: impl Into<String>,
        design_name: impl Into<String>,
        cost: Cost,
    ) -> Result<Design, HgraphError> {
        let cluster = self.graph.add_cluster(device, cluster_name);
        let design =
            self.graph
                .add_vertex(cluster.into(), design_name, ResourceAttrs::functional(cost));
        let ports: Vec<PortId> = self.graph.ports_of(device).to_vec();
        for p in ports {
            self.graph
                .map_port(cluster, p, PortTarget::vertex(design))?;
        }
        Ok(Design { cluster, design })
    }

    /// Connects two resources with a physical link.
    ///
    /// The link is stored as a single directed edge but interpreted
    /// bidirectionally by [`comm_reachable`](Self::comm_reachable).
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::add_edge`]. Note that resources inside a
    /// design cluster cannot be connected to top-level resources directly —
    /// connect to the device interface's ports instead, or (simpler, used
    /// by the paper models) connect the *bus* to the design vertex by
    /// placing both at top level. For the common "bus reaches a
    /// reconfigurable design" pattern, use
    /// [`connect_through`](Self::connect_through).
    pub fn connect(
        &mut self,
        a: impl Into<Endpoint>,
        b: impl Into<Endpoint>,
    ) -> Result<flexplore_hgraph::EdgeId, HgraphError> {
        self.graph.add_edge(a, b, Link)
    }

    /// Connects a top-level resource to a reconfigurable device through a
    /// port, creating the port on demand.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::add_edge`].
    pub fn connect_through(
        &mut self,
        resource: VertexId,
        device: InterfaceId,
    ) -> Result<flexplore_hgraph::EdgeId, HgraphError> {
        let port = self.graph.add_port(
            device,
            format!("link{}", self.graph.ports_of(device).len()),
            PortDirection::In,
        );
        // Map the new port in every existing design to that design's vertex.
        let clusters: Vec<ClusterId> = self.graph.clusters_of(device).to_vec();
        for c in clusters {
            let design = self.graph.cluster_vertices(c)[0];
            self.graph.map_port(c, port, PortTarget::vertex(design))?;
        }
        self.graph.add_edge(resource, (device, port), Link)
    }

    /// Returns the allocation cost of a resource.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn cost(&self, v: VertexId) -> Cost {
        self.graph.vertex_weight(v).cost
    }

    /// Returns whether `v` is a functional or communication resource.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn kind(&self, v: VertexId) -> ResourceKind {
        self.graph.vertex_weight(v).kind
    }

    /// Returns the name of a resource.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn resource_name(&self, v: VertexId) -> &str {
        self.graph.vertex_name(v)
    }

    /// Returns the total allocation cost of a design cluster: the sum of
    /// the costs of its leaves (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a cluster of this graph.
    #[must_use]
    pub fn cluster_cost(&self, c: ClusterId) -> Cost {
        self.graph
            .leaves_of_cluster(c)
            .into_iter()
            .map(|v| self.cost(v))
            .sum()
    }

    /// Iterates over all functional resources (at all hierarchy levels).
    pub fn functional_resources(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.graph
            .vertex_ids()
            .filter(|&v| self.kind(v) == ResourceKind::Functional)
    }

    /// Iterates over all communication resources (at all hierarchy levels).
    pub fn communication_resources(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.graph
            .vertex_ids()
            .filter(|&v| self.kind(v) == ResourceKind::Communication)
    }

    /// Undirected adjacency over the *flattened* architecture under
    /// `selection`, restricted to `allocated` vertices.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::flatten`].
    pub fn adjacency(
        &self,
        selection: &Selection,
        allocated: &BTreeSet<VertexId>,
    ) -> Result<BTreeMap<VertexId, Vec<VertexId>>, HgraphError> {
        let flat = self.graph.flatten(selection)?;
        let mut adj: BTreeMap<VertexId, Vec<VertexId>> = BTreeMap::new();
        for e in &flat.edges {
            if allocated.contains(&e.from) && allocated.contains(&e.to) {
                adj.entry(e.from).or_default().push(e.to);
                adj.entry(e.to).or_default().push(e.from);
            }
        }
        Ok(adj)
    }

    /// Decides whether data can travel between two allocated functional
    /// resources: `true` if `from == to`, or if an undirected path exists
    /// whose **intermediate** vertices are all allocated communication
    /// resources.
    ///
    /// This generalizes binding-feasibility rule 3 of the paper and
    /// reproduces its Fig. 2 example: with no bus between the ASIC and the
    /// FPGA, processes bound to them cannot communicate.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::flatten`].
    pub fn comm_reachable(
        &self,
        selection: &Selection,
        allocated: &BTreeSet<VertexId>,
        from: VertexId,
        to: VertexId,
    ) -> Result<bool, HgraphError> {
        if from == to {
            return Ok(true);
        }
        if !allocated.contains(&from) || !allocated.contains(&to) {
            return Ok(false);
        }
        let adj = self.adjacency(selection, allocated)?;
        let mut seen = BTreeSet::from([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            let Some(neighbors) = adj.get(&v) else {
                continue;
            };
            for &n in neighbors {
                if n == to {
                    return Ok(true);
                }
                // Only communication resources forward traffic.
                if self.kind(n) == ResourceKind::Communication && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        Ok(false)
    }

    /// Validates the structural invariants of the graph.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalGraph::validate`].
    pub fn validate(&self) -> Result<(), HgraphError> {
        self.graph.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 architecture: uP -C1- FPGA, uP -C2- ASIC; no ASIC-FPGA link.
    fn fig2() -> (ArchitectureGraph, VertexId, VertexId, VertexId, Design) {
        let mut a = ArchitectureGraph::new("fig2");
        let up = a.add_resource(Scope::Top, "uP", Cost::new(100));
        let asic = a.add_resource(Scope::Top, "A", Cost::new(250));
        let c1 = a.add_bus(Scope::Top, "C1", Cost::new(10));
        let c2 = a.add_bus(Scope::Top, "C2", Cost::new(10));
        let fpga = a.add_interface(Scope::Top, "FPGA");
        let d3 = a.add_design(fpga, "cfg_D3", "D3", Cost::new(60)).unwrap();
        a.connect(up, c1).unwrap();
        a.connect_through(c1, fpga).unwrap();
        a.connect(up, c2).unwrap();
        a.connect(c2, asic).unwrap();
        (a, up, asic, c2, d3)
    }

    fn all_vertices(a: &ArchitectureGraph) -> BTreeSet<VertexId> {
        a.graph().vertex_ids().collect()
    }

    #[test]
    fn costs_and_kinds() {
        let (a, up, asic, c2, d3) = fig2();
        assert_eq!(a.cost(up), Cost::new(100));
        assert_eq!(a.kind(asic), ResourceKind::Functional);
        assert_eq!(a.kind(c2), ResourceKind::Communication);
        assert_eq!(a.cost(d3.design), Cost::new(60));
        assert_eq!(a.cluster_cost(d3.cluster), Cost::new(60));
        assert_eq!(a.resource_name(up), "uP");
    }

    #[test]
    fn functional_and_comm_iterators() {
        let (a, _, _, _, _) = fig2();
        assert_eq!(a.functional_resources().count(), 3); // uP, A, D3
        assert_eq!(a.communication_resources().count(), 2); // C1, C2
    }

    #[test]
    fn comm_reachability_through_bus() {
        let (a, up, asic, _, d3) = fig2();
        let fpga = a.graph().interface_by_name(Scope::Top, "FPGA").unwrap();
        let sel = Selection::new().with(fpga, d3.cluster);
        let alloc = all_vertices(&a);
        // uP reaches ASIC via C2.
        assert!(a.comm_reachable(&sel, &alloc, up, asic).unwrap());
        // uP reaches the FPGA design via C1.
        assert!(a.comm_reachable(&sel, &alloc, up, d3.design).unwrap());
        // Paper's infeasibility example: no bus between ASIC and FPGA.
        assert!(!a.comm_reachable(&sel, &alloc, asic, d3.design).unwrap());
        // Same resource is trivially reachable.
        assert!(a.comm_reachable(&sel, &alloc, up, up).unwrap());
    }

    #[test]
    fn deallocated_bus_breaks_reachability() {
        let (a, up, asic, c2, d3) = fig2();
        let fpga = a.graph().interface_by_name(Scope::Top, "FPGA").unwrap();
        let sel = Selection::new().with(fpga, d3.cluster);
        let mut alloc = all_vertices(&a);
        alloc.remove(&c2);
        assert!(!a.comm_reachable(&sel, &alloc, up, asic).unwrap());
    }

    #[test]
    fn unallocated_endpoint_is_unreachable() {
        let (a, up, asic, _, d3) = fig2();
        let fpga = a.graph().interface_by_name(Scope::Top, "FPGA").unwrap();
        let sel = Selection::new().with(fpga, d3.cluster);
        let mut alloc = all_vertices(&a);
        alloc.remove(&asic);
        assert!(!a.comm_reachable(&sel, &alloc, up, asic).unwrap());
    }

    #[test]
    fn functional_resources_do_not_forward_traffic() {
        // up1 - A - up2 (ASIC in the middle): A is functional, so up1 must
        // not reach up2 through it.
        let mut a = ArchitectureGraph::new("chain");
        let up1 = a.add_resource(Scope::Top, "uP1", Cost::new(1));
        let mid = a.add_resource(Scope::Top, "A", Cost::new(1));
        let up2 = a.add_resource(Scope::Top, "uP2", Cost::new(1));
        a.connect(up1, mid).unwrap();
        a.connect(mid, up2).unwrap();
        let alloc = all_vertices(&a);
        let sel = Selection::new();
        assert!(!a.comm_reachable(&sel, &alloc, up1, up2).unwrap());
        assert!(a.comm_reachable(&sel, &alloc, up1, mid).unwrap());
    }

    #[test]
    fn multiple_designs_added_after_ports() {
        let mut a = ArchitectureGraph::new("fpga");
        let bus = a.add_bus(Scope::Top, "C", Cost::new(5));
        let fpga = a.add_interface(Scope::Top, "FPGA");
        a.connect_through(bus, fpga).unwrap();
        // Designs added after the port exists get the mapping automatically.
        let d1 = a.add_design(fpga, "cfg1", "D1", Cost::new(30)).unwrap();
        let d2 = a.add_design(fpga, "cfg2", "D2", Cost::new(40)).unwrap();
        assert!(a.validate().is_ok());
        let sel = Selection::new().with(fpga, d2.cluster);
        let alloc = all_vertices(&a);
        assert!(a
            .comm_reachable(&sel, &alloc, d2.design, d2.design)
            .unwrap());
        assert_eq!(a.cluster_cost(d1.cluster), Cost::new(30));
    }
}
