//! A fixed-stride multi-word bitset over allocatable units.
//!
//! PR 5's lattice search indexed subsets with a bare `u64`, capping every
//! model at 63 units. [`UnitMask`] keeps the same O(1) word-wise
//! operations (AND/OR/ANDNOT, popcount, set-bit iteration) over a fixed
//! `[u64; UNIT_MASK_WORDS]` array, so every layer from `spec` to the CLI
//! can address up to [`MAX_UNITS`] units without changing its algorithms.
//!
//! Invariants the exploration layers rely on:
//!
//! * **Numeric order.** `Ord` compares masks as the 256-bit integers they
//!   encode (most-significant word first), so the flat enumerator's
//!   mask-ascending scan order — and the stable final sort that reproduces
//!   it byte-for-byte from the lattice search — survives the multi-word
//!   representation.
//! * **No stray high bits.** Constructors only set bits the caller names;
//!   complement is only available as [`UnitMask::andnot`] against an
//!   explicit universe, so bits at or above the unit count never appear.
//! * **Stable text form.** [`Display`](fmt::Display) and serde render the
//!   mask as lowercase hex of the encoded integer, byte-identical across
//!   platforms and thread counts.

use serde::{DeError, Deserialize, Serialize, Value};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign};
use std::str::FromStr;

/// Number of `u64` words in a [`UnitMask`].
pub const UNIT_MASK_WORDS: usize = 4;

/// Maximum number of allocatable units a [`UnitMask`] can index.
pub const MAX_UNITS: usize = UNIT_MASK_WORDS * 64;

/// A subset of at most [`MAX_UNITS`] allocatable units, bit `k` standing
/// for unit `k` of the enumeration's fixed unit universe.
///
/// # Examples
///
/// ```
/// use flexplore_spec::UnitMask;
///
/// let all = UnitMask::full(70);
/// assert_eq!(all.count_ones(), 70);
/// let without_low = all.andnot(UnitMask::full(64));
/// assert_eq!(without_low, UnitMask::range(64, 70));
/// assert_eq!(without_low.iter_ones().next(), Some(64));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UnitMask {
    /// Little-endian words: bit `k` lives in `words[k / 64]`.
    words: [u64; UNIT_MASK_WORDS],
}

impl UnitMask {
    /// The empty subset.
    #[must_use]
    pub const fn empty() -> Self {
        UnitMask {
            words: [0; UNIT_MASK_WORDS],
        }
    }

    /// `true` when no unit is set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The singleton mask of unit `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k >= MAX_UNITS`.
    #[must_use]
    pub fn bit(k: usize) -> Self {
        assert!(k < MAX_UNITS, "unit {k} exceeds the {MAX_UNITS}-unit cap");
        let mut words = [0; UNIT_MASK_WORDS];
        words[k / 64] = 1u64 << (k % 64);
        UnitMask { words }
    }

    /// The mask of the `n` lowest units — the full universe of an
    /// `n`-unit enumeration. Exact for every `n` including word
    /// boundaries (`full(64)` occupies exactly one word).
    ///
    /// # Panics
    ///
    /// Panics when `n > MAX_UNITS`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_UNITS, "{n} units exceed the {MAX_UNITS}-unit cap");
        let mut words = [0; UNIT_MASK_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            let lo = i * 64;
            if n >= lo + 64 {
                *w = u64::MAX;
            } else if n > lo {
                *w = u64::MAX >> (64 - (n - lo));
            }
        }
        UnitMask { words }
    }

    /// The mask of units `lo..hi` (empty when `lo >= hi`) — the safe
    /// replacement for `(u64::MAX >> (64 - (hi - lo))) << lo`, which
    /// breaks at word boundaries.
    ///
    /// # Panics
    ///
    /// Panics when `hi > MAX_UNITS`.
    #[must_use]
    pub fn range(lo: usize, hi: usize) -> Self {
        if lo >= hi {
            return UnitMask::empty();
        }
        UnitMask::full(hi).andnot(UnitMask::full(lo))
    }

    /// `true` when unit `k` is in the subset (`false` past the cap).
    #[must_use]
    pub fn test(self, k: usize) -> bool {
        k < MAX_UNITS && self.words[k / 64] & (1u64 << (k % 64)) != 0
    }

    /// This subset with unit `k` added.
    ///
    /// # Panics
    ///
    /// Panics when `k >= MAX_UNITS`.
    #[must_use]
    pub fn with(self, k: usize) -> Self {
        self | UnitMask::bit(k)
    }

    /// Adds unit `k` in place.
    ///
    /// # Panics
    ///
    /// Panics when `k >= MAX_UNITS`.
    pub fn set(&mut self, k: usize) {
        *self |= UnitMask::bit(k);
    }

    /// Removes unit `k` in place.
    ///
    /// # Panics
    ///
    /// Panics when `k >= MAX_UNITS`.
    pub fn clear(&mut self, k: usize) {
        *self = self.andnot(UnitMask::bit(k));
    }

    /// The units of `self` not in `other` (`self & !other` without ever
    /// materializing a complement, which would set bits past the unit
    /// count).
    #[must_use]
    pub fn andnot(self, other: Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words) {
            *w &= !o;
        }
        UnitMask { words }
    }

    /// Number of units in the subset.
    #[must_use]
    pub fn count_ones(self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `true` when the two subsets share at least one unit.
    #[must_use]
    pub fn intersects(self, other: Self) -> bool {
        self.words.iter().zip(other.words).any(|(&w, o)| w & o != 0)
    }

    /// The encoded integer minus one, wrapping at zero — the multi-word
    /// borrow chain behind the classic `sub = (sub - 1) & rest` submask
    /// enumeration.
    #[must_use]
    pub fn wrapping_dec(self) -> Self {
        let mut words = self.words;
        for w in &mut words {
            let (next, borrow) = w.overflowing_sub(1);
            *w = next;
            if !borrow {
                break;
            }
        }
        UnitMask { words }
    }

    /// Iterates the set units in ascending order.
    pub fn iter_ones(self) -> impl Iterator<Item = usize> {
        IterOnes {
            words: self.words,
            word: 0,
        }
    }

    /// Builds a mask from raw little-endian words (bit `k` of word `i`
    /// stands for unit `i * 64 + k`). The caller is responsible for
    /// keeping bits within its unit universe.
    #[must_use]
    pub const fn from_words(words: [u64; UNIT_MASK_WORDS]) -> Self {
        UnitMask { words }
    }

    /// The raw little-endian words.
    #[must_use]
    pub const fn into_words(self) -> [u64; UNIT_MASK_WORDS] {
        self.words
    }

    /// The low 64 units as a bare `u64` — exact whenever the unit universe
    /// fits one word (every pre-multi-word model).
    #[must_use]
    pub const fn low_word(self) -> u64 {
        self.words[0]
    }
}

/// Set-bit iterator of [`UnitMask::iter_ones`].
struct IterOnes {
    words: [u64; UNIT_MASK_WORDS],
    word: usize,
}

impl Iterator for IterOnes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word < UNIT_MASK_WORDS {
            let w = &mut self.words[self.word];
            if *w != 0 {
                let k = w.trailing_zeros() as usize;
                *w &= *w - 1;
                return Some(self.word * 64 + k);
            }
            self.word += 1;
        }
        None
    }
}

impl Ord for UnitMask {
    /// Numeric order of the encoded 256-bit integer: most-significant
    /// word decides first. A derived order would compare `words[0]`
    /// first and diverge from the flat scan's mask-ascending order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.words.iter().rev().cmp(other.words.iter().rev())
    }
}

impl PartialOrd for UnitMask {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl BitAnd for UnitMask {
    type Output = UnitMask;

    fn bitand(self, rhs: Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(rhs.words) {
            *w &= o;
        }
        UnitMask { words }
    }
}

impl BitOr for UnitMask {
    type Output = UnitMask;

    fn bitor(self, rhs: Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(rhs.words) {
            *w |= o;
        }
        UnitMask { words }
    }
}

impl BitXor for UnitMask {
    type Output = UnitMask;

    fn bitxor(self, rhs: Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(rhs.words) {
            *w ^= o;
        }
        UnitMask { words }
    }
}

impl BitAndAssign for UnitMask {
    fn bitand_assign(&mut self, rhs: Self) {
        *self = *self & rhs;
    }
}

impl BitOrAssign for UnitMask {
    fn bitor_assign(&mut self, rhs: Self) {
        *self = *self | rhs;
    }
}

impl BitXorAssign for UnitMask {
    fn bitxor_assign(&mut self, rhs: Self) {
        *self = *self ^ rhs;
    }
}

impl fmt::Display for UnitMask {
    /// Lowercase hex of the encoded integer without leading zeros
    /// (`"0"` for the empty mask) — the canonical text form used by
    /// serde and diagnostics.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let top = self.words.iter().rposition(|&w| w != 0).unwrap_or_default();
        write!(f, "{:x}", self.words[top])?;
        for w in self.words[..top].iter().rev() {
            write!(f, "{w:016x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for UnitMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UnitMask({self})")
    }
}

impl FromStr for UnitMask {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let invalid = || format!("invalid unit mask {s:?} (expected up to 64 hex digits)");
        if s.is_empty() || s.len() > UNIT_MASK_WORDS * 16 {
            return Err(invalid());
        }
        let mut words = [0u64; UNIT_MASK_WORDS];
        let bytes = s.as_bytes();
        // Parse 16-digit chunks from the least-significant end.
        for (i, w) in words.iter_mut().enumerate() {
            let hi = bytes.len().saturating_sub(i * 16);
            let lo = bytes.len().saturating_sub((i + 1) * 16);
            if hi == lo {
                break;
            }
            let chunk = std::str::from_utf8(&bytes[lo..hi]).map_err(|_| invalid())?;
            *w = u64::from_str_radix(chunk, 16).map_err(|_| invalid())?;
        }
        Ok(UnitMask { words })
    }
}

impl Serialize for UnitMask {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for UnitMask {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(DeError::new),
            _ => Err(DeError::expected("unit-mask hex string", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries_are_exact() {
        // The 63/64/65 edge: `1u64 << 64` and `u64::MAX >> (64 - 64)`
        // panic or wrap on a bare u64; the mask helpers must not.
        for n in [0, 1, 63, 64, 65, 127, 128, 129, 255, 256] {
            let full = UnitMask::full(n);
            assert_eq!(full.count_ones() as usize, n, "full({n})");
            assert_eq!(full.iter_ones().count(), n, "iter full({n})");
            if n < MAX_UNITS {
                assert!(!full.test(n), "bit {n} must be clear in full({n})");
                let bit = UnitMask::bit(n);
                assert!(bit.test(n));
                assert_eq!(bit.count_ones(), 1);
                assert!(!full.intersects(bit));
            }
            if n > 0 {
                assert!(full.test(n - 1));
            }
        }
        assert_eq!(UnitMask::full(64).into_words(), [u64::MAX, 0, 0, 0]);
        assert_eq!(UnitMask::full(65).into_words(), [u64::MAX, 1, 0, 0]);
    }

    #[test]
    fn range_masks_the_top_word() {
        // rest_mask(n, depth) = range(depth, n): correct at exactly
        // 63/64/65 units where the old shift expression breaks.
        for n in [63, 64, 65, 100] {
            for depth in [0, 1, 62, 63, 64, 65] {
                let depth = depth.min(n);
                let rest = UnitMask::range(depth, n);
                assert_eq!(rest.count_ones() as usize, n - depth, "range({depth},{n})");
                assert_eq!(rest, UnitMask::full(n).andnot(UnitMask::full(depth)));
                if depth < n {
                    assert_eq!(rest.iter_ones().next(), Some(depth));
                    assert_eq!(rest.iter_ones().last(), Some(n - 1));
                }
            }
        }
        assert!(UnitMask::range(5, 5).is_empty());
        assert!(UnitMask::range(7, 3).is_empty());
    }

    #[test]
    fn ord_is_numeric_not_lexicographic() {
        // bit 64 encodes a larger integer than any single-word mask; the
        // derived array order would say otherwise (words[0] first).
        let high = UnitMask::bit(64);
        let low = UnitMask::from_words([u64::MAX, 0, 0, 0]);
        assert!(low < high);
        assert!(UnitMask::empty() < low);
        let mut masks = vec![high, UnitMask::empty(), low, UnitMask::bit(3)];
        masks.sort();
        assert_eq!(masks, vec![UnitMask::empty(), UnitMask::bit(3), low, high]);
    }

    #[test]
    fn wrapping_dec_borrows_across_words() {
        // 2^64 - 1 = all of word 0.
        assert_eq!(
            UnitMask::bit(64).wrapping_dec(),
            UnitMask::from_words([u64::MAX, 0, 0, 0])
        );
        assert_eq!(UnitMask::bit(0).wrapping_dec(), UnitMask::empty());
        // 0 - 1 wraps to all ones.
        assert_eq!(
            UnitMask::empty().wrapping_dec(),
            UnitMask::from_words([u64::MAX; UNIT_MASK_WORDS])
        );
        // Submask enumeration over a cross-word rest visits 2^k subsets.
        let rest = UnitMask::bit(2) | UnitMask::bit(63) | UnitMask::bit(64) | UnitMask::bit(130);
        let mut seen = Vec::new();
        let mut sub = rest;
        loop {
            seen.push(sub);
            if sub.is_empty() {
                break;
            }
            sub = sub.wrapping_dec() & rest;
        }
        assert_eq!(seen.len(), 16);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn set_operations_match_per_bit_semantics() {
        let a = UnitMask::bit(1) | UnitMask::bit(63) | UnitMask::bit(64) | UnitMask::bit(200);
        let b = UnitMask::bit(63) | UnitMask::bit(65) | UnitMask::bit(200);
        for k in 0..MAX_UNITS {
            assert_eq!((a & b).test(k), a.test(k) && b.test(k));
            assert_eq!((a | b).test(k), a.test(k) || b.test(k));
            assert_eq!((a ^ b).test(k), a.test(k) != b.test(k));
            assert_eq!(a.andnot(b).test(k), a.test(k) && !b.test(k));
        }
        assert!(a.intersects(b));
        assert!(!a.andnot(b).intersects(b));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 63, 64, 200]);
        let mut c = a;
        c.clear(64);
        assert!(!c.test(64));
        c.set(64);
        assert_eq!(c, a);
    }

    #[test]
    fn display_and_parse_round_trip() {
        assert_eq!(UnitMask::empty().to_string(), "0");
        assert_eq!(UnitMask::bit(4).to_string(), "10");
        assert_eq!(UnitMask::bit(64).to_string(), "10000000000000000");
        let samples = [
            UnitMask::empty(),
            UnitMask::bit(0),
            UnitMask::full(63),
            UnitMask::full(64),
            UnitMask::full(65),
            UnitMask::full(MAX_UNITS),
            UnitMask::bit(64) | UnitMask::bit(1),
            UnitMask::bit(255),
        ];
        for mask in samples {
            let parsed: UnitMask = mask.to_string().parse().unwrap();
            assert_eq!(parsed, mask, "{mask}");
        }
        assert!("".parse::<UnitMask>().is_err());
        assert!("xyz".parse::<UnitMask>().is_err());
        assert!("1".repeat(65).parse::<UnitMask>().is_err());
    }

    #[test]
    fn serde_json_round_trip() {
        let samples = [
            UnitMask::empty(),
            UnitMask::full(65),
            UnitMask::bit(3) | UnitMask::bit(200),
        ];
        for mask in samples {
            let json = serde_json::to_string(&mask).unwrap();
            assert_eq!(json, format!("\"{mask}\""));
            let back: UnitMask = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mask);
        }
        assert!(serde_json::from_str::<UnitMask>("\"not-hex\"").is_err());
    }

    #[test]
    fn low_word_and_full_low_range_agree() {
        for n in 0..=63 {
            assert_eq!(UnitMask::full(n).low_word(), (1u64 << n) - 1);
        }
        assert_eq!(UnitMask::full(64).low_word(), u64::MAX);
    }
}
