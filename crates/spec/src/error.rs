//! Error types of the specification layer.

use flexplore_hgraph::{EdgeId, HgraphError, VertexId};
use std::error::Error;
use std::fmt;

use crate::spec::MappingId;

/// Error returned by construction and validation of specification graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A structural defect in the problem graph.
    Problem(HgraphError),
    /// A structural defect in the architecture graph.
    Architecture(HgraphError),
    /// A mapping edge with invalid endpoints.
    MappingEndpoint {
        /// The problem-side endpoint.
        process: VertexId,
        /// The architecture-side endpoint.
        resource: VertexId,
        /// Why the mapping is invalid.
        reason: &'static str,
    },
}

impl SpecError {
    /// The `flexlint` diagnostic code that statically predicts this error,
    /// if one exists (see the diagnostics catalog in DESIGN.md §10).
    ///
    /// Solver and loader call sites include the code in their messages so
    /// users can jump from a runtime failure to `flexplore lint` output.
    #[must_use]
    pub fn lint_code(&self) -> Option<&'static str> {
        match self {
            SpecError::Problem(e) | SpecError::Architecture(e) => hgraph_lint_code(e),
            SpecError::MappingEndpoint { .. } => Some("F005"),
        }
    }
}

fn hgraph_lint_code(e: &HgraphError) -> Option<&'static str> {
    match e {
        HgraphError::InterfaceWithoutClusters { .. } => Some("F001"),
        HgraphError::ContainmentCycle { .. } => Some("F002"),
        HgraphError::DanglingReference { .. } => Some("F003"),
        _ => None,
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Problem(e) => write!(f, "problem graph: {e}"),
            SpecError::Architecture(e) => write!(f, "architecture graph: {e}"),
            SpecError::MappingEndpoint {
                process,
                resource,
                reason,
            } => write!(f, "mapping {process} -> {resource}: {reason}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Problem(e) | SpecError::Architecture(e) => Some(e),
            SpecError::MappingEndpoint { .. } => None,
        }
    }
}

impl From<HgraphError> for SpecError {
    fn from(e: HgraphError) -> Self {
        SpecError::Problem(e)
    }
}

/// A violated binding-feasibility requirement (Section 2 of the paper).
///
/// Returned by
/// [`SpecificationGraph::check_binding`](crate::SpecificationGraph::check_binding);
/// each variant corresponds to one of the three requirements a feasible
/// timed binding must satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BindingViolation {
    /// Requirement 1: an activated mapping edge must start and end at
    /// vertices activated at the same time.
    InactiveEndpoint {
        /// The offending mapping edge.
        mapping: MappingId,
        /// `true` if the problem-side endpoint is inactive, `false` for the
        /// architecture side.
        problem_side: bool,
    },
    /// Requirement 2: an activated problem leaf with no activated outgoing
    /// mapping edge.
    UnboundProcess {
        /// The unbound process.
        process: VertexId,
    },
    /// Requirement 2: an activated problem leaf bound through more than one
    /// mapping edge.
    MultipleBindings {
        /// The over-bound process.
        process: VertexId,
    },
    /// The binding entry for a process references a mapping edge of a
    /// different process.
    ForeignMapping {
        /// The process with the dangling entry.
        process: VertexId,
        /// The mapping that belongs to another process.
        mapping: MappingId,
    },
    /// Requirement 3: a data dependence between processes on different
    /// resources with no activated communication path between them.
    NoCommunicationPath {
        /// The dependence edge that cannot be routed.
        edge: EdgeId,
        /// Resource of the producing process.
        from_resource: VertexId,
        /// Resource of the consuming process.
        to_resource: VertexId,
    },
    /// The mode's selections are inconsistent with the hierarchy (missing
    /// or foreign cluster choices).
    InvalidMode(HgraphError),
}

impl BindingViolation {
    /// The `flexlint` diagnostic code that statically predicts this
    /// violation, if one exists (see the diagnostics catalog in DESIGN.md
    /// §10).
    #[must_use]
    pub fn lint_code(&self) -> Option<&'static str> {
        match self {
            BindingViolation::UnboundProcess { .. } => Some("F004"),
            BindingViolation::NoCommunicationPath { .. } => Some("F007"),
            BindingViolation::InvalidMode(e) => hgraph_lint_code(e),
            _ => None,
        }
    }
}

impl fmt::Display for BindingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingViolation::InactiveEndpoint {
                mapping,
                problem_side,
            } => {
                let side = if *problem_side {
                    "problem"
                } else {
                    "architecture"
                };
                write!(f, "mapping {mapping} has an inactive {side}-side endpoint")
            }
            BindingViolation::UnboundProcess { process } => {
                write!(
                    f,
                    "activated process {process} is not bound to any resource"
                )
            }
            BindingViolation::MultipleBindings { process } => {
                write!(f, "activated process {process} is bound more than once")
            }
            BindingViolation::ForeignMapping { process, mapping } => {
                write!(
                    f,
                    "binding entry for {process} uses foreign mapping {mapping}"
                )
            }
            BindingViolation::NoCommunicationPath {
                edge,
                from_resource,
                to_resource,
            } => write!(
                f,
                "dependence {edge} cannot be routed between {from_resource} and {to_resource}"
            ),
            BindingViolation::InvalidMode(e) => write!(f, "invalid mode: {e}"),
        }
    }
}

impl Error for BindingViolation {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BindingViolation::InvalidMode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HgraphError> for BindingViolation {
    fn from(e: HgraphError) -> Self {
        BindingViolation::InvalidMode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_implement_std_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SpecError>();
        assert_traits::<BindingViolation>();
    }

    #[test]
    fn display_messages_are_lowercase() {
        let v = BindingViolation::UnboundProcess {
            process: VertexId::from_index(3),
        };
        let msg = v.to_string();
        assert!(msg.contains("v3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn lint_codes_match_the_catalog() {
        let iface = flexplore_hgraph::InterfaceId::from_index(0);
        let err = SpecError::Problem(HgraphError::InterfaceWithoutClusters { interface: iface });
        assert_eq!(err.lint_code(), Some("F001"));
        let err = SpecError::MappingEndpoint {
            process: VertexId::from_index(0),
            resource: VertexId::from_index(1),
            reason: "x",
        };
        assert_eq!(err.lint_code(), Some("F005"));
        let v = BindingViolation::UnboundProcess {
            process: VertexId::from_index(0),
        };
        assert_eq!(v.lint_code(), Some("F004"));
        let v = BindingViolation::NoCommunicationPath {
            edge: EdgeId::from_index(0),
            from_resource: VertexId::from_index(0),
            to_resource: VertexId::from_index(1),
        };
        assert_eq!(v.lint_code(), Some("F007"));
        let v = BindingViolation::MultipleBindings {
            process: VertexId::from_index(0),
        };
        assert_eq!(v.lint_code(), None);
    }

    #[test]
    fn spec_error_wraps_hgraph_error() {
        let inner = HgraphError::InterfaceWithoutClusters {
            interface: flexplore_hgraph::InterfaceId::from_index(0),
        };
        let err: SpecError = inner.clone().into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("problem graph"));
        let arch = SpecError::Architecture(inner);
        assert!(arch.to_string().contains("architecture graph"));
    }
}
