//! The declarative binding-feasibility checker.
//!
//! Section 2 of the paper defines when a timed binding `β(t)` is feasible
//! for a given specification graph and timed allocation `α(t)`:
//!
//! 1. each activated mapping edge starts and ends at vertices activated at
//!    time `t`;
//! 2. each activated problem-graph leaf has **exactly one** activated
//!    outgoing mapping edge;
//! 3. each activated dependence edge `(v_i, v_j)` either has both
//!    operations on the same resource, or an activated communication path
//!    connects the two resources.
//!
//! This module implements that definition directly, independent of any
//! solver: `flexplore-bind` *constructs* bindings, this checker *verifies*
//! them, and the property tests assert that everything constructed passes
//! verification.

use crate::error::BindingViolation;
use crate::spec::{Mapping, MappingId, Mode, SpecificationGraph};
use flexplore_hgraph::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A timed binding for one mode: each activated process is implemented by
/// exactly one of its mapping edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    entries: BTreeMap<VertexId, MappingId>,
}

impl Binding {
    /// Creates an empty binding.
    #[must_use]
    pub fn new() -> Self {
        Binding::default()
    }

    /// Binds `process` through `mapping`, replacing any previous entry.
    pub fn bind(&mut self, process: VertexId, mapping: MappingId) -> &mut Self {
        self.entries.insert(process, mapping);
        self
    }

    /// Builder-style variant of [`bind`](Self::bind).
    #[must_use]
    pub fn with(mut self, process: VertexId, mapping: MappingId) -> Self {
        self.entries.insert(process, mapping);
        self
    }

    /// Removes the entry for `process`, returning the mapping it used.
    pub fn remove(&mut self, process: VertexId) -> Option<MappingId> {
        self.entries.remove(&process)
    }

    /// Returns the mapping edge used for `process`, if bound.
    #[must_use]
    pub fn mapping_for(&self, process: VertexId) -> Option<MappingId> {
        self.entries.get(&process).copied()
    }

    /// Returns the resource `process` is bound to, resolving through the
    /// specification.
    #[must_use]
    pub fn resource_for(&self, spec: &SpecificationGraph, process: VertexId) -> Option<VertexId> {
        self.mapping_for(process).map(|m| spec.mapping(m).resource)
    }

    /// Iterates over `(process, mapping)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, MappingId)> + '_ {
        self.entries.iter().map(|(&p, &m)| (p, m))
    }

    /// Returns the number of bound processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no process is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(VertexId, MappingId)> for Binding {
    fn from_iter<T: IntoIterator<Item = (VertexId, MappingId)>>(iter: T) -> Self {
        Binding {
            entries: iter.into_iter().collect(),
        }
    }
}

impl SpecificationGraph {
    /// Checks the three binding-feasibility requirements for one mode.
    ///
    /// `allocated` is the set of architecture vertices paid for by the
    /// design point (see
    /// [`ResourceAllocation::available_vertices`](crate::ResourceAllocation::available_vertices));
    /// within the mode, a resource is *activated* iff it is allocated **and**
    /// present in the flattened architecture under the mode's configuration
    /// (a reconfigurable device exposes only its selected design).
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn check_binding(
        &self,
        mode: &Mode,
        allocated: &BTreeSet<VertexId>,
        binding: &Binding,
    ) -> Result<(), BindingViolation> {
        let problem_flat = self.problem().flatten(&mode.problem)?;
        let arch_selection = self.complete_arch_selection(&mode.architecture);
        let arch_flat = self.architecture().graph().flatten(&arch_selection)?;

        // A resource is active in this mode iff allocated and configured.
        let active_resources: BTreeSet<VertexId> = arch_flat
            .vertices
            .iter()
            .copied()
            .filter(|v| allocated.contains(v))
            .collect();

        // Requirement 2 (and entry sanity): every activated leaf bound
        // exactly once through one of its own mapping edges.
        for &process in &problem_flat.vertices {
            let Some(m) = binding.mapping_for(process) else {
                return Err(BindingViolation::UnboundProcess { process });
            };
            let mapping: &Mapping = self.mapping(m);
            if mapping.process != process {
                return Err(BindingViolation::ForeignMapping {
                    process,
                    mapping: m,
                });
            }
            // Requirement 1: both endpoints active.
            if !active_resources.contains(&mapping.resource) {
                return Err(BindingViolation::InactiveEndpoint {
                    mapping: m,
                    problem_side: false,
                });
            }
        }
        // Requirement 1, problem side: entries for inactive processes are
        // activated mapping edges with an inactive source.
        for (process, m) in binding.iter() {
            if !problem_flat.contains(process) {
                return Err(BindingViolation::InactiveEndpoint {
                    mapping: m,
                    problem_side: true,
                });
            }
        }

        // Requirement 3: route every activated dependence.
        for e in &problem_flat.edges {
            let from_res = binding
                .resource_for(self, e.from)
                .expect("checked above: all active processes bound");
            let to_res = binding
                .resource_for(self, e.to)
                .expect("checked above: all active processes bound");
            if from_res == to_res {
                continue;
            }
            let reachable = self.architecture().comm_reachable(
                &arch_selection,
                &active_resources,
                from_res,
                to_res,
            )?;
            if !reachable {
                return Err(BindingViolation::NoCommunicationPath {
                    edge: e.id,
                    from_resource: from_res,
                    to_resource: to_res,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::ArchitectureGraph;
    use crate::attrs::Cost;
    use crate::problem::ProblemGraph;
    use flexplore_hgraph::{Scope, Selection};
    use flexplore_sched::Time;

    /// Two communicating processes; two resources joined by a bus, plus an
    /// isolated third resource.
    struct Fixture {
        spec: SpecificationGraph,
        t1: VertexId,
        t2: VertexId,
        r1: VertexId,
        r2: VertexId,
        r3: VertexId,
        bus: VertexId,
        m: BTreeMap<(usize, usize), MappingId>,
    }

    fn fixture() -> Fixture {
        let mut p = ProblemGraph::new("p");
        let t1 = p.add_process(Scope::Top, "t1");
        let t2 = p.add_process(Scope::Top, "t2");
        p.add_dependence(t1, t2).unwrap();
        let mut a = ArchitectureGraph::new("a");
        let r1 = a.add_resource(Scope::Top, "r1", Cost::new(100));
        let r2 = a.add_resource(Scope::Top, "r2", Cost::new(100));
        let r3 = a.add_resource(Scope::Top, "r3", Cost::new(100));
        let bus = a.add_bus(Scope::Top, "bus", Cost::new(10));
        a.connect(r1, bus).unwrap();
        a.connect(bus, r2).unwrap();
        let mut spec = SpecificationGraph::new("s", p, a);
        let mut m = BTreeMap::new();
        m.insert((1, 1), spec.add_mapping(t1, r1, Time::from_ns(5)).unwrap());
        m.insert((1, 2), spec.add_mapping(t1, r2, Time::from_ns(6)).unwrap());
        m.insert((2, 2), spec.add_mapping(t2, r2, Time::from_ns(7)).unwrap());
        m.insert((2, 3), spec.add_mapping(t2, r3, Time::from_ns(8)).unwrap());
        Fixture {
            spec,
            t1,
            t2,
            r1,
            r2,
            r3,
            bus,
            m,
        }
    }

    fn mode() -> Mode {
        Mode::new(Selection::new(), Selection::new())
    }

    #[test]
    fn binding_over_bus_is_feasible() {
        let f = fixture();
        let allocated = BTreeSet::from([f.r1, f.r2, f.bus]);
        let binding = Binding::new()
            .with(f.t1, f.m[&(1, 1)])
            .with(f.t2, f.m[&(2, 2)]);
        assert!(f.spec.check_binding(&mode(), &allocated, &binding).is_ok());
    }

    #[test]
    fn same_resource_needs_no_bus() {
        let f = fixture();
        let allocated = BTreeSet::from([f.r2]);
        let binding = Binding::new()
            .with(f.t1, f.m[&(1, 2)])
            .with(f.t2, f.m[&(2, 2)]);
        assert!(f.spec.check_binding(&mode(), &allocated, &binding).is_ok());
    }

    #[test]
    fn missing_bus_violates_rule_3() {
        let f = fixture();
        let allocated = BTreeSet::from([f.r1, f.r2]); // bus not allocated
        let binding = Binding::new()
            .with(f.t1, f.m[&(1, 1)])
            .with(f.t2, f.m[&(2, 2)]);
        let err = f
            .spec
            .check_binding(&mode(), &allocated, &binding)
            .unwrap_err();
        assert!(matches!(err, BindingViolation::NoCommunicationPath { .. }));
    }

    #[test]
    fn disconnected_resource_violates_rule_3() {
        // r3 has no link at all — the paper's ASIC/FPGA example.
        let f = fixture();
        let allocated = BTreeSet::from([f.r1, f.r3, f.bus]);
        let binding = Binding::new()
            .with(f.t1, f.m[&(1, 1)])
            .with(f.t2, f.m[&(2, 3)]);
        let err = f
            .spec
            .check_binding(&mode(), &allocated, &binding)
            .unwrap_err();
        assert!(matches!(err, BindingViolation::NoCommunicationPath { .. }));
    }

    #[test]
    fn unbound_process_violates_rule_2() {
        let f = fixture();
        let allocated = BTreeSet::from([f.r1, f.r2, f.bus]);
        let binding = Binding::new().with(f.t1, f.m[&(1, 1)]);
        let err = f
            .spec
            .check_binding(&mode(), &allocated, &binding)
            .unwrap_err();
        assert_eq!(err, BindingViolation::UnboundProcess { process: f.t2 });
    }

    #[test]
    fn unallocated_resource_violates_rule_1() {
        let f = fixture();
        let allocated = BTreeSet::from([f.r2]); // r1 not allocated
        let binding = Binding::new()
            .with(f.t1, f.m[&(1, 1)])
            .with(f.t2, f.m[&(2, 2)]);
        let err = f
            .spec
            .check_binding(&mode(), &allocated, &binding)
            .unwrap_err();
        assert!(matches!(
            err,
            BindingViolation::InactiveEndpoint {
                problem_side: false,
                ..
            }
        ));
    }

    #[test]
    fn foreign_mapping_is_detected() {
        let f = fixture();
        let allocated = BTreeSet::from([f.r1, f.r2, f.bus]);
        // t1 bound via t2's mapping.
        let binding = Binding::new()
            .with(f.t1, f.m[&(2, 2)])
            .with(f.t2, f.m[&(2, 2)]);
        let err = f
            .spec
            .check_binding(&mode(), &allocated, &binding)
            .unwrap_err();
        assert!(matches!(err, BindingViolation::ForeignMapping { .. }));
    }

    #[test]
    fn binding_entry_for_inactive_process_is_rejected() {
        // Problem graph with an interface: binding an unselected cluster's
        // process violates rule 1 on the problem side.
        let mut p = ProblemGraph::new("p");
        let i = p.add_interface(Scope::Top, "I");
        let c1 = p.add_cluster(i, "c1");
        let v1 = p.add_process(c1.into(), "v1");
        let c2 = p.add_cluster(i, "c2");
        let v2 = p.add_process(c2.into(), "v2");
        let mut a = ArchitectureGraph::new("a");
        let r = a.add_resource(Scope::Top, "r", Cost::new(1));
        let mut spec = SpecificationGraph::new("s", p, a);
        let m1 = spec.add_mapping(v1, r, Time::from_ns(1)).unwrap();
        let m2 = spec.add_mapping(v2, r, Time::from_ns(1)).unwrap();
        let mode = Mode::new(Selection::new().with(i, c1), Selection::new());
        let allocated = BTreeSet::from([r]);
        // Correct binding passes.
        let ok = Binding::new().with(v1, m1);
        assert!(spec.check_binding(&mode, &allocated, &ok).is_ok());
        // Extra entry for inactive v2 fails.
        let bad = Binding::new().with(v1, m1).with(v2, m2);
        let err = spec.check_binding(&mode, &allocated, &bad).unwrap_err();
        assert!(matches!(
            err,
            BindingViolation::InactiveEndpoint {
                problem_side: true,
                ..
            }
        ));
    }

    #[test]
    fn binding_accessors() {
        let f = fixture();
        let binding: Binding = [(f.t1, f.m[&(1, 1)])].into_iter().collect();
        assert_eq!(binding.len(), 1);
        assert!(!binding.is_empty());
        assert_eq!(binding.mapping_for(f.t1), Some(f.m[&(1, 1)]));
        assert_eq!(binding.mapping_for(f.t2), None);
        assert_eq!(binding.resource_for(&f.spec, f.t1), Some(f.r1));
        let mut b2 = Binding::new();
        b2.bind(f.t1, f.m[&(1, 2)]);
        assert_eq!(b2.resource_for(&f.spec, f.t1), Some(f.r2));
    }
}
