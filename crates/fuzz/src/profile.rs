//! Domain profiles: which generator family a fuzz iteration draws from.

use flexplore_models::{
    automotive_spec, baseband_spec, cloud_fpga_spec, synthetic_spec, AutomotiveConfig,
    BasebandConfig, CloudFpgaConfig, SyntheticConfig,
};
use flexplore_spec::SpecificationGraph;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// A platform-domain generator family.
///
/// Each profile draws a *randomized small configuration* of its family's
/// generator — sizes stay inside the flat enumerator's comfort zone so the
/// differential oracles (which run the exhaustive engines) complete in
/// milliseconds per specification. The one exception is [`Wide`], which
/// deliberately draws 64–128-unit specifications so every fuzz run
/// exercises the multi-word mask path; its oracles fall back to
/// branch-and-bound self-comparison where the flat scan is intractable.
///
/// [`Wide`]: DomainProfile::Wide
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainProfile {
    /// Set-top-box-shaped synthetic specifications (the paper's case-study
    /// family, via [`synthetic_spec`]).
    SetTopBox,
    /// Automotive zonal E/E architectures ([`automotive_spec`]).
    Automotive,
    /// 5G baseband processing platforms ([`baseband_spec`]).
    Baseband,
    /// Multi-tenant cloud FPGA platforms ([`cloud_fpga_spec`]).
    CloudFpga,
    /// Wide synthetic platforms with 64–128 allocatable units — past the
    /// historical one-word mask ceiling (via [`synthetic_spec`] with many
    /// dedicated task resources).
    Wide,
}

impl DomainProfile {
    /// All profiles, in canonical order.
    #[must_use]
    pub fn all() -> [DomainProfile; 5] {
        [
            DomainProfile::SetTopBox,
            DomainProfile::Automotive,
            DomainProfile::Baseband,
            DomainProfile::CloudFpga,
            DomainProfile::Wide,
        ]
    }

    /// The canonical (CLI / corpus-file) name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DomainProfile::SetTopBox => "stb",
            DomainProfile::Automotive => "automotive",
            DomainProfile::Baseband => "baseband",
            DomainProfile::CloudFpga => "cloud-fpga",
            DomainProfile::Wide => "wide",
        }
    }

    /// A per-profile salt mixed into derived seeds, so equal iteration
    /// indices of different profiles draw unrelated specifications.
    #[must_use]
    pub(crate) fn salt(self) -> u64 {
        match self {
            DomainProfile::SetTopBox => 0x005e_770b_b005,
            DomainProfile::Automotive => 0x207a_1e07,
            DomainProfile::Baseband => 0xba5e_ba4d,
            DomainProfile::CloudFpga => 0xc10d_f69a,
            DomainProfile::Wide => 0x3186_1de5,
        }
    }
}

impl fmt::Display for DomainProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DomainProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "stb" | "set-top-box" | "settopbox" => Ok(DomainProfile::SetTopBox),
            "automotive" | "zonal" => Ok(DomainProfile::Automotive),
            "baseband" | "5g" => Ok(DomainProfile::Baseband),
            "cloud-fpga" | "cloudfpga" | "cloud" => Ok(DomainProfile::CloudFpga),
            "wide" => Ok(DomainProfile::Wide),
            other => Err(format!(
                "unknown domain profile `{other}` (expected stb, automotive, baseband, \
                 cloud-fpga or wide)"
            )),
        }
    }
}

/// Generates one specification of `profile`'s family from `seed`.
///
/// Deterministic: equal `(profile, seed)` pairs produce byte-identical
/// specifications. The seed drives both the drawn configuration (sizes,
/// optional units, constraint density) and the generator's own RNG.
#[must_use]
pub fn generate(profile: DomainProfile, seed: u64) -> SpecificationGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let fraction = f64::from(rng.random_range(0..=10u32)) / 10.0;
    match profile {
        DomainProfile::SetTopBox => {
            let config = SyntheticConfig {
                seed: rng.next_u64(),
                applications: rng.random_range(1..=2),
                interfaces_per_app: rng.random_range(1..=2),
                alternatives: rng.random_range(1..=3),
                processors: rng.random_range(1..=2),
                asics: rng.random_range(0..=2),
                fpga_designs: rng.random_range(0..=2),
                constrained_fraction: fraction,
                dedicated_tasks: rng.random_range(0..=2),
            };
            synthetic_spec(&config)
        }
        DomainProfile::Automotive => {
            let config = AutomotiveConfig {
                seed: rng.next_u64(),
                zones: rng.random_range(1..=3),
                functions: rng.random_range(1..=3),
                alternatives: rng.random_range(1..=3),
                central_units: rng.random_range(1..=2),
                accelerator: rng.random_bool(0.5),
                constrained_fraction: fraction,
            };
            automotive_spec(&config)
        }
        DomainProfile::Baseband => {
            let config = BasebandConfig {
                seed: rng.next_u64(),
                carriers: rng.random_range(1..=2),
                demod_alternatives: rng.random_range(1..=2),
                decode_alternatives: rng.random_range(1..=3),
                dsp_cores: rng.random_range(1..=2),
                ldpc_accelerator: rng.random_bool(0.5),
                fabric_designs: rng.random_range(0..=2),
                constrained_fraction: fraction,
            };
            baseband_spec(&config)
        }
        DomainProfile::CloudFpga => {
            let config = CloudFpgaConfig {
                seed: rng.next_u64(),
                tenants: rng.random_range(1..=2),
                kernel_alternatives: rng.random_range(1..=3),
                designs_per_slot: rng.random_range(1..=2),
                host_cpus: rng.random_range(1..=2),
                constrained_fraction: fraction,
            };
            cloud_fpga_spec(&config)
        }
        DomainProfile::Wide => {
            let processors = rng.random_range(1..=2usize);
            let asics = rng.random_range(0..=2usize);
            let fpga_designs = rng.random_range(0..=2usize);
            // Units = shared bus + processors + ASICs + dedicated
            // resources, plus the FPGA bus and its designs when present;
            // top the count up with dedicated tasks so every drawn
            // specification lands past the one-word (64-unit) boundary.
            let fixed = 1
                + processors
                + asics
                + if fpga_designs > 0 {
                    fpga_designs + 1
                } else {
                    0
                };
            let target = rng.random_range(64..=128usize);
            let config = SyntheticConfig {
                seed: rng.next_u64(),
                applications: rng.random_range(1..=2),
                interfaces_per_app: rng.random_range(1..=2),
                alternatives: rng.random_range(1..=3),
                processors,
                asics,
                fpga_designs,
                constrained_fraction: fraction,
                dedicated_tasks: target - fixed,
            };
            synthetic_spec(&config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_explore::allocatable_units;
    use flexplore_models::spec_to_json;

    #[test]
    fn names_round_trip() {
        for profile in DomainProfile::all() {
            assert_eq!(profile.name().parse::<DomainProfile>().unwrap(), profile);
        }
        assert!("bogus".parse::<DomainProfile>().is_err());
    }

    #[test]
    fn generation_is_deterministic_per_profile() {
        for profile in DomainProfile::all() {
            let a = spec_to_json(&generate(profile, 7)).unwrap();
            let b = spec_to_json(&generate(profile, 7)).unwrap();
            assert_eq!(a, b, "{profile}");
        }
    }

    #[test]
    fn drawn_specs_stay_inside_their_unit_band() {
        for profile in DomainProfile::all() {
            for seed in 0..10 {
                let spec = generate(profile, seed);
                let units = allocatable_units(&spec).len();
                if profile == DomainProfile::Wide {
                    assert!(
                        (64..=128).contains(&units),
                        "{profile} seed {seed}: {units} units"
                    );
                } else {
                    assert!(units <= 16, "{profile} seed {seed}: {units} units");
                }
            }
        }
    }
}
