//! The regression corpus: violating specifications, minimized and kept.
//!
//! Every violation the fuzzer finds is delta-debugged and written as a
//! JSON repro file into a corpus directory (`tests/corpus/` in this
//! repository). A replay run loads every file and re-checks **all**
//! oracles — including the enumerator-equivalence oracle, which exercises
//! both the flat and the branch-and-bound engine — so once a bug is fixed,
//! its repro keeps guarding against regression forever.
//!
//! File format (one JSON object per file):
//!
//! ```json
//! {
//!   "fuzz_format": 1,
//!   "profile": "automotive",
//!   "seed": 1234,
//!   "oracle": "lint-explore",
//!   "detail": "panic: ...",
//!   "spec": { ...a serialized SpecificationGraph... }
//! }
//! ```

use crate::json::Json;
use crate::oracles::{check_all, Violation};
use flexplore_models::spec_from_json;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Version tag of the repro file format.
pub const FUZZ_FORMAT: u64 = 1;

/// One repro case, as stored in a corpus file.
#[derive(Debug, Clone)]
pub struct ReproCase {
    /// Domain-profile name that generated the spec (free-form for
    /// hand-written cases).
    pub profile: String,
    /// The derived seed the violating iteration used.
    pub seed: u64,
    /// Name of the violated oracle.
    pub oracle: String,
    /// The violation's detail at discovery time.
    pub detail: String,
    /// The (minimized) specification, as compact JSON.
    pub spec_json: String,
}

impl ReproCase {
    /// The deterministic file name for this case.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}-seed{}-{}.json", self.profile, self.seed, self.oracle)
    }

    /// Renders the repro document.
    #[must_use]
    pub fn render(&self) -> String {
        let spec = Json::parse(&self.spec_json).expect("repro spec is valid JSON");
        Json::Object(vec![
            ("fuzz_format".into(), Json::Number(FUZZ_FORMAT.to_string())),
            ("profile".into(), Json::Str(self.profile.clone())),
            ("seed".into(), Json::Number(self.seed.to_string())),
            ("oracle".into(), Json::Str(self.oracle.clone())),
            ("detail".into(), Json::Str(self.detail.clone())),
            ("spec".into(), spec),
        ])
        .render()
    }

    /// Writes the case into `dir` (created if missing); returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_into(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        fs::write(&path, self.render() + "\n")?;
        Ok(path)
    }

    /// Parses a repro document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a missing/mistyped field or an
    /// unsupported format version.
    pub fn parse(text: &str) -> Result<ReproCase, String> {
        let root = Json::parse(text)?;
        let format = root
            .get("fuzz_format")
            .and_then(Json::as_u64)
            .ok_or("missing numeric `fuzz_format`")?;
        if format != FUZZ_FORMAT {
            return Err(format!("unsupported fuzz_format {format}"));
        }
        let field = |name: &str| -> Result<String, String> {
            root.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string `{name}`"))
        };
        Ok(ReproCase {
            profile: field("profile")?,
            seed: root
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing numeric `seed`")?,
            oracle: field("oracle")?,
            detail: field("detail")?,
            spec_json: root.get("spec").ok_or("missing `spec`")?.render(),
        })
    }
}

/// Result of replaying one corpus file.
#[derive(Debug, Clone)]
pub struct ReplayedCase {
    /// File name (not the full path).
    pub file: String,
    /// Violations still present (empty once the bug is fixed — the
    /// steady state the regression test asserts).
    pub violations: Vec<Violation>,
}

/// Result of replaying a corpus directory.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Replayed cases, in file-name order.
    pub cases: Vec<ReplayedCase>,
}

impl ReplayReport {
    /// `true` when every replayed case passes every oracle.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.cases.iter().all(|case| case.violations.is_empty())
    }

    /// Deterministic text rendering (no timing, no paths beyond file
    /// names).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for case in &self.cases {
            if case.violations.is_empty() {
                let _ = writeln!(out, "replay {}: ok", case.file);
            } else {
                for v in &case.violations {
                    let _ = writeln!(out, "replay {}: {} {}", case.file, v.oracle, v.detail);
                }
            }
        }
        let broken = self
            .cases
            .iter()
            .filter(|case| !case.violations.is_empty())
            .count();
        let _ = writeln!(
            out,
            "replayed {} corpus case(s), {} violating",
            self.cases.len(),
            broken
        );
        out
    }
}

/// Replays every `*.json` file of `dir` (sorted by file name) through all
/// oracles. A missing directory replays zero cases (a repository with an
/// empty corpus is healthy).
///
/// # Errors
///
/// Returns a message naming the offending file for unreadable files,
/// malformed repro documents, or embedded specs that fail validation.
pub fn replay_dir(dir: &Path) -> Result<ReplayReport, String> {
    let mut files: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect(),
        Err(_) => Vec::new(),
    };
    files.sort();
    let mut report = ReplayReport::default();
    for path in files {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = fs::read_to_string(&path).map_err(|e| format!("{file}: unreadable: {e}"))?;
        let case = ReproCase::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        let spec = spec_from_json(&case.spec_json)
            .map_err(|e| format!("{file}: embedded spec rejected: {e}"))?;
        report.cases.push(ReplayedCase {
            file,
            violations: check_all(&spec, 1),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_models::spec_to_json;

    #[test]
    fn repro_documents_round_trip() {
        let spec = flexplore_models::set_top_box().spec;
        let case = ReproCase {
            profile: "stb".into(),
            seed: 7,
            oracle: "lint-explore".into(),
            detail: "panic: example".into(),
            spec_json: spec_to_json(&spec).unwrap(),
        };
        let parsed = ReproCase::parse(&case.render()).unwrap();
        assert_eq!(parsed.profile, "stb");
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.oracle, "lint-explore");
        assert_eq!(parsed.file_name(), "stb-seed7-lint-explore.json");
        let reloaded = spec_from_json(&parsed.spec_json).unwrap();
        assert_eq!(
            spec_to_json(&reloaded).unwrap(),
            spec_to_json(&spec).unwrap()
        );
    }

    #[test]
    fn missing_directory_replays_nothing() {
        let report = replay_dir(Path::new("/nonexistent/fuzz-corpus")).unwrap();
        assert!(report.is_clean());
        assert!(report.cases.is_empty());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(ReproCase::parse("{}").is_err());
        assert!(ReproCase::parse("not json").is_err());
        assert!(ReproCase::parse(
            r#"{"fuzz_format":99,"profile":"x","seed":1,"oracle":"y","detail":"z","spec":{}}"#
        )
        .is_err());
    }
}
