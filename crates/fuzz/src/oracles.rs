//! The differential invariant oracles.
//!
//! Every oracle states a property the repo already proves elsewhere (unit
//! tests, CI determinism diffs) — the fuzzer re-checks them on *generated*
//! specifications, where a violation means a real pipeline bug rather than
//! a bad test vector:
//!
//! | oracle | invariant |
//! |---|---|
//! | `lint-explore` | lint-error-free ⇒ `explore` returns `Ok`, and never panics |
//! | `enumerator-equivalence` | flat and branch-and-bound enumerators produce byte-identical fronts (wide specs: branch-and-bound at 1 vs 4 threads, where the `2^n` flat scan is intractable) |
//! | `moea-subset` | every MOEA archive point is weakly dominated by the exact front |
//! | `thread-invariance` | fronts and deterministic obs counters are identical for 1 and 4 threads |
//! | `resilience-subset` | fault-degraded points are weakly dominated by the healthy front, and `resilience ≤ flexibility` |
//! | `round-trip` | serialize → deserialize → compile → explore reproduces the front byte-identically |
//! | `analysis-facts` | every static lattice fact (mandatory / dominated / symmetry, DESIGN.md §15) holds on the prune-free flat enumeration of small specs |
//! | `warm-start-equivalence` | re-exploring from a warm-start cache entry — unchanged, after a latency edit, after a cost edit — reproduces the cold front and counters byte-identically |
//!
//! Each oracle body runs under [`capture`](crate::capture::capture), so a
//! panic anywhere in hgraph/spec/bind/explore surfaces as a violation with
//! the panic message as its detail — never as a crashed fuzzer.

use crate::capture::capture;
use flexplore_bind::ImplementOptions;
use flexplore_explore::{
    explore, explore_compiled_warm, explore_resilient, explore_with_obs, moea_explore,
    possible_resource_allocations, AllocationCandidate, AllocationOptions, Enumerator,
    ExploreError, ExploreOptions, ExploreResult, MoeaOptions, Unit, WarmMode,
};
use flexplore_flex::Flexibility;
use flexplore_lint::{compute_facts, lint_spec};
use flexplore_obs::ObsSink;
use flexplore_spec::{CompiledSpec, Cost, SpecificationGraph};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Which invariant an oracle checks. See the module table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Lint-error-free ⇒ explore succeeds; panics are always violations.
    LintExplore,
    /// Flat vs branch-and-bound enumerator fronts, byte-compared.
    EnumeratorEquivalence,
    /// MOEA archive ⊆ (weak dominance) exact front.
    MoeaSubset,
    /// Thread-count invariance of fronts and deterministic counters.
    ThreadInvariance,
    /// Fault-degraded fronts ⊆ healthy fronts.
    ResilienceSubset,
    /// JSON round-trip reproduces the front.
    RoundTrip,
    /// Static lattice facts vs the prune-free flat enumeration.
    AnalysisFacts,
    /// Warm-started re-exploration reproduces the cold run byte-identically.
    WarmStartEquivalence,
}

impl OracleKind {
    /// All oracles, in canonical order.
    #[must_use]
    pub fn all() -> [OracleKind; 8] {
        [
            OracleKind::LintExplore,
            OracleKind::EnumeratorEquivalence,
            OracleKind::MoeaSubset,
            OracleKind::ThreadInvariance,
            OracleKind::ResilienceSubset,
            OracleKind::RoundTrip,
            OracleKind::AnalysisFacts,
            OracleKind::WarmStartEquivalence,
        ]
    }

    /// The canonical (report / corpus-file) name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::LintExplore => "lint-explore",
            OracleKind::EnumeratorEquivalence => "enumerator-equivalence",
            OracleKind::MoeaSubset => "moea-subset",
            OracleKind::ThreadInvariance => "thread-invariance",
            OracleKind::ResilienceSubset => "resilience-subset",
            OracleKind::RoundTrip => "round-trip",
            OracleKind::AnalysisFacts => "analysis-facts",
            OracleKind::WarmStartEquivalence => "warm-start-equivalence",
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for OracleKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OracleKind::all()
            .into_iter()
            .find(|kind| kind.name() == s)
            .ok_or_else(|| format!("unknown oracle `{s}`"))
    }
}

/// One invariant violation on one specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated invariant.
    pub oracle: OracleKind,
    /// Deterministic human-readable evidence (front bytes, panic message,
    /// typed-error display — never timing or addresses).
    pub detail: String,
}

/// Runs every oracle against `spec`; `threads` is the worker count for the
/// primary explore of the `lint-explore` oracle (output-invariant by the
/// thread-determinism contract, so the fuzz report stays byte-identical
/// across thread counts).
#[must_use]
pub fn check_all(spec: &SpecificationGraph, threads: usize) -> Vec<Violation> {
    OracleKind::all()
        .into_iter()
        .filter_map(|kind| check_oracle(spec, kind, threads))
        .collect()
}

/// Runs one oracle against `spec`. `None` means the invariant holds.
#[must_use]
pub fn check_oracle(
    spec: &SpecificationGraph,
    kind: OracleKind,
    threads: usize,
) -> Option<Violation> {
    let s = spec.clone();
    let outcome = match kind {
        OracleKind::LintExplore => capture(move || lint_explore(&s, threads)),
        OracleKind::EnumeratorEquivalence => capture(move || enumerator_equivalence(&s)),
        OracleKind::MoeaSubset => capture(move || moea_subset(&s)),
        OracleKind::ThreadInvariance => capture(move || thread_invariance(&s)),
        OracleKind::ResilienceSubset => capture(move || resilience_subset(&s)),
        OracleKind::RoundTrip => capture(move || round_trip(&s)),
        OracleKind::AnalysisFacts => capture(move || analysis_facts(&s)),
        OracleKind::WarmStartEquivalence => capture(move || warm_start_equivalence(&s)),
    };
    match outcome {
        Err(panic) => Some(Violation {
            oracle: kind,
            detail: format!("panic: {panic}"),
        }),
        Ok(Some(detail)) => Some(Violation {
            oracle: kind,
            detail,
        }),
        Ok(None) => None,
    }
}

/// Renders an explore outcome to comparable deterministic bytes: the
/// serialized front on success, the typed error's display on failure.
fn render_outcome(result: Result<ExploreResult, ExploreError>) -> String {
    match result {
        Ok(result) => serde_json::to_string(&result.front).expect("front serializes"),
        Err(e) => format!("error: {e}"),
    }
}

fn lint_explore(spec: &SpecificationGraph, threads: usize) -> Option<String> {
    let report = lint_spec(spec);
    if report.has_errors() {
        // Out of contract: exploring may fail (with a typed error), but the
        // capture wrapper still turns any panic into a violation.
        let _ = explore(spec, &ExploreOptions::paper());
        return None;
    }
    match explore(spec, &ExploreOptions::paper().with_threads(threads)) {
        Ok(_) => None,
        Err(e) => Some(format!("lint-clean specification failed explore: {e}")),
    }
}

/// Largest unit count the flat oracle is asked to judge exhaustively
/// (`2^20 ≈ 10^6` subsets, milliseconds); wider specifications compare
/// the branch-and-bound enumerator against itself across worker counts.
const FLAT_ORACLE_MAX_UNITS: usize = 20;

fn enumerator_equivalence(spec: &SpecificationGraph) -> Option<String> {
    if flexplore_explore::allocatable_units(spec).len() > FLAT_ORACLE_MAX_UNITS {
        let mut one = ExploreOptions::paper().with_threads(1);
        one.allocation.enumerator = Enumerator::BranchAndBound;
        let mut four = ExploreOptions::paper().with_threads(4);
        four.allocation.enumerator = Enumerator::BranchAndBound;
        let a = render_outcome(explore(spec, &one));
        let b = render_outcome(explore(spec, &four));
        return (a != b).then(|| format!("branch-and-bound threads 1 {a} != threads 4 {b}"));
    }
    let mut flat = ExploreOptions::paper();
    flat.allocation.enumerator = Enumerator::Flat;
    let mut bnb = ExploreOptions::paper();
    bnb.allocation.enumerator = Enumerator::BranchAndBound;
    let a = render_outcome(explore(spec, &flat));
    let b = render_outcome(explore(spec, &bnb));
    (a != b).then(|| format!("flat {a} != branch-and-bound {b}"))
}

fn moea_subset(spec: &SpecificationGraph) -> Option<String> {
    let Ok(exact) = explore(spec, &ExploreOptions::paper()) else {
        return None;
    };
    let options = MoeaOptions {
        population: 16,
        generations: 8,
        seed: 0x5eed_f00d,
        mutation_rate: None,
        implement: ImplementOptions::default(),
    };
    let Ok(moea) = moea_explore(spec, &options) else {
        return None;
    };
    for p in moea.front.iter() {
        let covered = exact
            .front
            .iter()
            .any(|q| q.cost <= p.cost && q.flexibility >= p.flexibility);
        if !covered {
            return Some(format!(
                "MOEA point (cost {:?}, flexibility {:?}) is not weakly dominated by the exact front {:?}",
                p.cost,
                p.flexibility,
                exact.front.objectives()
            ));
        }
    }
    None
}

fn thread_invariance(spec: &SpecificationGraph) -> Option<String> {
    // Sequential reference, then every worker count the work-stealing
    // scheduler must reproduce byte for byte — including an
    // oversubscribed one (8) so steal-heavy schedules are exercised.
    let obs_one = ObsSink::enabled();
    let a = render_outcome(explore_with_obs(
        spec,
        &ExploreOptions::paper().with_threads(1),
        &obs_one,
    ));
    let ca = obs_one
        .report("fuzz", spec.name(), 1)
        .counters_json()
        .expect("counters serialize");
    for threads in [4usize, 8] {
        let obs_n = ObsSink::enabled();
        let b = render_outcome(explore_with_obs(
            spec,
            &ExploreOptions::paper().with_threads(threads),
            &obs_n,
        ));
        if a != b {
            return Some(format!(
                "threads 1 front {a} != threads {threads} front {b}"
            ));
        }
        let cb = obs_n
            .report("fuzz", spec.name(), threads)
            .counters_json()
            .expect("counters serialize");
        if ca != cb {
            return Some(format!(
                "threads 1 counters {ca} != threads {threads} counters {cb}"
            ));
        }
    }
    None
}

fn resilience_subset(spec: &SpecificationGraph) -> Option<String> {
    let Ok(healthy) = explore(spec, &ExploreOptions::paper()) else {
        return None;
    };
    let Ok(resilient) = explore_resilient(spec, 1, &ExploreOptions::paper()) else {
        return None;
    };
    for p in &resilient {
        if p.resilience > p.flexibility {
            return Some(format!(
                "resilience {:?} exceeds fault-free flexibility {:?} at cost {:?}",
                p.resilience, p.flexibility, p.cost
            ));
        }
        let covered = healthy
            .front
            .iter()
            .any(|q| q.cost <= p.cost && q.flexibility >= p.flexibility);
        if !covered {
            return Some(format!(
                "resilient point (cost {:?}, flexibility {:?}) is not weakly dominated by the healthy front {:?}",
                p.cost,
                p.flexibility,
                healthy.front.objectives()
            ));
        }
    }
    None
}

fn round_trip(spec: &SpecificationGraph) -> Option<String> {
    let json = flexplore_models::spec_to_json(spec).expect("spec serializes");
    let reparsed = match flexplore_models::spec_from_json(&json) {
        Ok(reparsed) => reparsed,
        Err(e) => return Some(format!("serialized spec failed to reload: {e}")),
    };
    if let Err(e) = CompiledSpec::try_new(&reparsed) {
        return Some(format!("reloaded spec failed compilation: {e}"));
    }
    let a = render_outcome(explore(spec, &ExploreOptions::paper()));
    let b = render_outcome(explore(&reparsed, &ExploreOptions::paper()));
    (a != b).then(|| format!("front changed across JSON round-trip: {a} != {b}"))
}

/// Largest unit count the analysis-facts oracle judges exhaustively
/// (`2^16` subsets with every pruning disabled — still milliseconds).
const ANALYSIS_ORACLE_MAX_UNITS: usize = 16;

/// Cross-checks the static lattice facts (`F014`/`F015`/`F016`) against
/// ground truth: a flat enumeration with *every* structural pruning
/// disabled, which keeps exactly the estimate-feasible subsets — the
/// lattice the facts are stated against. (The bus/unusable prunings are
/// sound for front construction but punch holes in the feasible set: a
/// dominance swap target may leave a bus with a single neighbor.)
fn analysis_facts(spec: &SpecificationGraph) -> Option<String> {
    if lint_spec(spec).has_errors() {
        return None;
    }
    let units = flexplore_explore::allocatable_units(spec);
    let n = units.len();
    if n == 0 || n > ANALYSIS_ORACLE_MAX_UNITS {
        return None;
    }
    let Ok(compiled) = CompiledSpec::try_new(spec) else {
        return None;
    };
    let facts = compute_facts(&compiled, &units);

    let options = AllocationOptions {
        prune_useless_buses: false,
        prune_unusable: false,
        enumerator: Enumerator::Flat,
        ..AllocationOptions::default()
    };
    let Ok((candidates, _)) = possible_resource_allocations(spec, &options) else {
        return None;
    };

    // Re-derive each candidate's subset mask as a u64 over unit indices.
    let mask_of = |c: &AllocationCandidate| -> u64 {
        units.iter().enumerate().fold(0u64, |m, (k, unit)| {
            let present = match unit {
                Unit::Vertex(v) => c.allocation.vertices.contains(v),
                Unit::Cluster(cl) => c.allocation.clusters.contains(cl),
            };
            m | (u64::from(present) << k)
        })
    };
    let kept: BTreeMap<u64, (Cost, Flexibility)> = candidates
        .iter()
        .map(|c| (mask_of(c), (c.cost, c.estimate.value)))
        .collect();

    // Sanity: the fact families are provably disjoint — a mandatory unit
    // in a symmetry class (or with a dominator) would let a feasible
    // subset drop it, contradicting mandatoriness.
    for k in facts.mandatory.iter_ones() {
        if facts.dominated_by[k].is_some() {
            return Some(format!("unit {k} is both mandatory and dominated"));
        }
        if facts.class_of[k].is_some() {
            return Some(format!(
                "unit {k} is both mandatory and in a symmetry class"
            ));
        }
    }

    // F014 soundness: every feasible subset contains every mandatory unit.
    // F014 completeness: when the full allocation is feasible, dropping
    // any unit *not* flagged mandatory must leave it feasible.
    let mandatory: u64 = facts.mandatory.iter_ones().fold(0, |m, k| m | (1 << k));
    for &m in kept.keys() {
        if m & mandatory != mandatory {
            return Some(format!(
                "feasible subset {m:#x} misses mandatory units {mandatory:#x}"
            ));
        }
    }
    let universe: u64 = (1 << n) - 1;
    if kept.contains_key(&universe) {
        for k in 0..n {
            if mandatory & (1 << k) == 0 && !kept.contains_key(&(universe & !(1 << k))) {
                return Some(format!(
                    "unit {k} is not flagged mandatory, yet the full allocation minus it \
                     is infeasible"
                ));
            }
        }
    }

    // F015: replacing a dominated unit with its witness keeps feasibility
    // and is weakly better on both objectives.
    for (u, by) in facts.dominated_by.iter().enumerate() {
        let Some(w) = *by else { continue };
        let w = w as usize;
        for (&m, &(cost, value)) in &kept {
            if m & (1 << u) == 0 {
                continue;
            }
            let swapped = (m & !(1 << u)) | (1 << w);
            match kept.get(&swapped) {
                None => {
                    return Some(format!(
                        "dominated unit {u}: swapping in witness {w} turned feasible \
                         {m:#x} into infeasible {swapped:#x}"
                    ))
                }
                Some(&(sc, sv)) => {
                    if sc > cost || sv < value {
                        return Some(format!(
                            "dominated unit {u}: swapping in witness {w} worsened \
                             ({cost}, {value:?}) to ({sc}, {sv:?})"
                        ));
                    }
                }
            }
        }
    }

    // F016: symmetry-class members are interchangeable — a single swap
    // preserves feasibility, cost and the estimate exactly.
    for class in &facts.classes {
        for &a in class {
            for &b in class {
                if a == b {
                    continue;
                }
                let (a, b) = (a as usize, b as usize);
                for (&m, &(cost, value)) in &kept {
                    if m & (1 << a) == 0 || m & (1 << b) != 0 {
                        continue;
                    }
                    let swapped = (m & !(1 << a)) | (1 << b);
                    match kept.get(&swapped) {
                        None => {
                            return Some(format!(
                                "symmetry: swapping unit {a} for {b} in {m:#x} lost \
                                 feasibility"
                            ))
                        }
                        Some(&(sc, sv)) => {
                            if sc != cost || sv != value {
                                return Some(format!(
                                    "symmetry: swapping unit {a} for {b} changed \
                                     ({cost}, {value:?}) to ({sc}, {sv:?})"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Bumps the first `"field"` numeric value in `json` by one — the
/// smallest spec edit a watch-mode user produces between cycles. `None`
/// when the spec has no such field.
fn bump_numeric_field(json: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\"");
    let at = json.find(&needle)? + needle.len();
    let digits_at = at + json[at..].find(|c: char| c.is_ascii_digit())?;
    let digits_end = digits_at
        + json[digits_at..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(json.len() - digits_at);
    let value: u64 = json[digits_at..digits_end].parse().ok()?;
    Some(format!(
        "{}{}{}",
        &json[..digits_at],
        value + 1,
        &json[digits_end..]
    ))
}

/// Warm-started re-exploration must be byte-equivalent to a cold run on
/// the same spec: exact replay on an unchanged spec, enumeration replay
/// after a binding-layer (latency) edit, lattice reseed after an
/// enumeration-layer (cost) edit. Only wall-clock and the warm
/// bookkeeping fields may differ.
fn warm_start_equivalence(spec: &SpecificationGraph) -> Option<String> {
    let options = ExploreOptions::paper();
    let obs = ObsSink::disabled();
    let Ok(compiled) = CompiledSpec::try_new(spec) else {
        return None;
    };
    let Ok(baseline) = explore_compiled_warm(&compiled, &options, None, &obs) else {
        return None; // cold failures belong to the lint-explore oracle
    };
    let front_bytes =
        |result: &ExploreResult| serde_json::to_string(&result.front).expect("front serializes");
    let cold_counters = |result: &ExploreResult| {
        let mut stats = result.stats;
        stats.allocations.warm_hits = 0;
        stats.allocations.warm_invalidated = 0;
        stats.allocations.delta_units = 0;
        stats
    };

    // Unchanged spec: an exact replay with the identical front.
    match explore_compiled_warm(&compiled, &options, Some(&baseline.entry), &obs) {
        Err(e) => return Some(format!("warm re-explore of the unchanged spec failed: {e}")),
        Ok(replayed) => {
            if replayed.summary.mode != WarmMode::Exact {
                return Some(format!(
                    "unchanged spec re-explored at warmth `{}`, expected `exact`",
                    replayed.summary.mode
                ));
            }
            if front_bytes(&replayed.result) != front_bytes(&baseline.result) {
                return Some(format!(
                    "exact replay changed the front: {} != {}",
                    front_bytes(&replayed.result),
                    front_bytes(&baseline.result)
                ));
            }
        }
    }

    // One-field edits: whatever warmth the delta admits, results must
    // match a cold run on the edited spec byte for byte.
    let json = flexplore_models::spec_to_json(spec).expect("spec serializes");
    for field in ["latency", "cost"] {
        let Some(edited_json) = bump_numeric_field(&json, field) else {
            continue;
        };
        let Ok(edited) = flexplore_models::spec_from_json(&edited_json) else {
            continue; // the bump violated a validation rule; not our contract
        };
        let Ok(edited_compiled) = CompiledSpec::try_new(&edited) else {
            continue;
        };
        let cold = explore_compiled_warm(&edited_compiled, &options, None, &obs);
        let warm = explore_compiled_warm(&edited_compiled, &options, Some(&baseline.entry), &obs);
        match (cold, warm) {
            (Ok(cold), Ok(warm)) => {
                if front_bytes(&warm.result) != front_bytes(&cold.result) {
                    return Some(format!(
                        "{field} edit: warm ({}) front {} != cold front {}",
                        warm.summary.mode,
                        front_bytes(&warm.result),
                        front_bytes(&cold.result)
                    ));
                }
                if cold_counters(&warm.result) != cold_counters(&cold.result) {
                    return Some(format!(
                        "{field} edit: warm ({}) counters diverged from cold",
                        warm.summary.mode
                    ));
                }
            }
            (Err(_), Err(_)) => {} // equivalently impossible either way
            (Ok(_), Err(e)) => {
                return Some(format!("{field} edit: cold succeeded but warm failed: {e}"))
            }
            (Err(e), Ok(_)) => {
                return Some(format!("{field} edit: warm succeeded but cold failed: {e}"))
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{generate, DomainProfile};

    #[test]
    fn bundled_case_study_passes_every_oracle() {
        let spec = flexplore_models::set_top_box().spec;
        assert_eq!(check_all(&spec, 1), Vec::new());
    }

    #[test]
    fn generated_specs_pass_every_oracle() {
        for profile in DomainProfile::all() {
            let spec = generate(profile, 3);
            let violations = check_all(&spec, 1);
            assert!(violations.is_empty(), "{profile}: {violations:?}");
        }
    }

    #[test]
    fn oracle_names_round_trip() {
        for kind in OracleKind::all() {
            assert_eq!(kind.name().parse::<OracleKind>().unwrap(), kind);
        }
        assert!("nope".parse::<OracleKind>().is_err());
    }
}
