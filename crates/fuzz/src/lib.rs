//! Seeded differential fuzzing of the whole flexplore pipeline.
//!
//! The paper's flexibility model claims to generalize across platform
//! families; the bundled case studies exercise four hand-written models.
//! This crate widens the validated input space: a **seeded, fully
//! deterministic generator** draws randomized small specifications from
//! four domain-profile families (set-top box, automotive zonal E/E, 5G
//! baseband, multi-tenant cloud FPGA — see [`DomainProfile`]), and a
//! **differential harness** runs every one through the full pipeline,
//! cross-checking the invariants the repo already proves on fixed inputs
//! (see [`OracleKind`] for the catalog).
//!
//! Violations are auto-minimized by deterministic delta-debugging
//! ([`minimize`]) and written as JSON repros into a regression corpus
//! ([`corpus`]), which `tests/corpus/` replays forever after.
//!
//! # Quick start
//!
//! ```
//! use flexplore_fuzz::{run_fuzz, DomainProfile, FuzzOptions};
//!
//! let report = run_fuzz(&FuzzOptions {
//!     seed: 42,
//!     iterations: 2,
//!     profiles: vec![DomainProfile::Automotive],
//!     threads: 1,
//!     corpus_dir: None,
//! });
//! assert!(report.is_clean());
//! assert_eq!(report.specs, 2);
//! ```
//!
//! The CLI front end is `flexplore fuzz --seed S --iterations N --profile
//! <family>`; reports are byte-reproducible across runs and thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod capture;
pub mod corpus;
mod harness;
mod json;
mod minimize;
mod oracles;
mod profile;

pub use corpus::{replay_dir, ReplayReport, ReproCase};
pub use harness::{derive_seed, run_fuzz, FuzzOptions, FuzzReport, ViolationRecord};
pub use minimize::minimize;
pub use oracles::{check_all, check_oracle, OracleKind, Violation};
pub use profile::{generate, DomainProfile};
