//! Deterministic delta-debugging of violating specifications.
//!
//! A violation's specification is minimized at the *serialized* level:
//! the only reductions are dropping elements from the three positional-
//! index-free arrays of the spec JSON — `mappings`, the problem graph's
//! `edges` and the architecture graph's `edges`. (Dropping vertices,
//! clusters or ports would shift the positional indices everything else
//! references; dropping array elements from these three arrays cannot,
//! because nothing references a mapping or an edge by index.)
//!
//! Reduction is ddmin-shaped: for each array, try removing chunks of
//! geometrically shrinking size; keep a removal iff the reloaded
//! specification still violates the *same* oracle. The procedure is fully
//! deterministic — same violation in, same repro out.

use crate::json::Json;
use crate::oracles::{check_oracle, OracleKind};
use flexplore_models::{spec_from_json, spec_to_json};
use flexplore_spec::SpecificationGraph;

/// The arrays the minimizer may shrink (paths into the spec JSON).
const REDUCIBLE_ARRAYS: [&[&str]; 3] = [
    &["mappings"],
    &["problem", "graph", "edges"],
    &["architecture", "graph", "edges"],
];

/// Minimizes `spec` while `kind` still reports a violation; returns the
/// minimized specification's JSON (compact).
///
/// If `kind` does not actually fail on `spec` (a flaky violation — which
/// the deterministic pipeline should make impossible), the input is
/// returned unreduced.
#[must_use]
pub fn minimize(spec: &SpecificationGraph, kind: OracleKind) -> String {
    let text = spec_to_json(spec).expect("spec serializes");
    let mut root = Json::parse(&text).expect("serialized spec is valid JSON");
    if !reproduces(&root, kind) {
        return root.render();
    }
    loop {
        let mut reduced = false;
        for path in REDUCIBLE_ARRAYS {
            reduced |= ddmin_array(&mut root, path, kind);
        }
        if !reduced {
            return root.render();
        }
    }
}

/// Does the document still parse, validate and violate `kind`?
fn reproduces(root: &Json, kind: OracleKind) -> bool {
    match spec_from_json(&root.render()) {
        Ok(candidate) => check_oracle(&candidate, kind, 1).is_some(),
        Err(_) => false,
    }
}

fn array_len(root: &Json, path: &[&str]) -> usize {
    root.at_path(path)
        .and_then(Json::as_array)
        .map_or(0, Vec::len)
}

/// One ddmin sweep over the array at `path`: chunk sizes shrink from half
/// the array down to 1; a successful removal re-tries the same position
/// with the same chunk size. Returns whether anything was removed.
fn ddmin_array(root: &mut Json, path: &[&str], kind: OracleKind) -> bool {
    let mut changed = false;
    let mut chunk = array_len(root, path).div_ceil(2).max(1);
    loop {
        let len = array_len(root, path);
        if len == 0 {
            break;
        }
        chunk = chunk.min(len);
        let mut start = 0;
        let mut removed_any = false;
        while start < array_len(root, path) {
            let mut candidate = root.clone();
            let items = candidate
                .at_path_mut(path)
                .and_then(Json::as_array_mut)
                .expect("reducible array exists");
            let end = (start + chunk).min(items.len());
            items.drain(start..end);
            if reproduces(&candidate, kind) {
                *root = candidate;
                changed = true;
                removed_any = true;
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_specs_come_back_unreduced() {
        // No oracle fails on the case study, so minimize must return the
        // document unchanged (same mapping/edge counts).
        let spec = flexplore_models::set_top_box().spec;
        let out = minimize(&spec, OracleKind::LintExplore);
        let reloaded = spec_from_json(&out).expect("minimized output reloads");
        assert_eq!(reloaded.mapping_count(), spec.mapping_count());
        assert_eq!(
            reloaded.problem().graph().edge_count(),
            spec.problem().graph().edge_count()
        );
    }

    #[test]
    fn reduction_paths_exist_in_the_serde_shape() {
        let spec = flexplore_models::set_top_box().spec;
        let text = spec_to_json(&spec).unwrap();
        let root = Json::parse(&text).unwrap();
        for path in REDUCIBLE_ARRAYS {
            assert!(
                root.at_path(path).and_then(Json::as_array).is_some(),
                "missing array at {path:?}"
            );
        }
    }
}
