//! Panic capture for oracle bodies.
//!
//! The whole workspace forbids `unsafe`, and most pipeline types are not
//! [`std::panic::UnwindSafe`], so `catch_unwind` is out. Instead every
//! oracle body runs on a freshly spawned, *named* thread: a panic unwinds
//! that thread only and surfaces as the `Err` of [`std::thread::JoinHandle::join`],
//! with the payload message recovered from the join error. A process-wide
//! panic hook (installed once) suppresses the default stderr backtrace for
//! exactly these threads, keeping fuzzer output byte-deterministic while
//! leaving every other thread's panic reporting untouched.

use std::panic;
use std::sync::Once;
use std::thread;

/// Name of the sacrificial oracle threads; the panic hook keys on it.
const ORACLE_THREAD: &str = "flexplore-fuzz-oracle";

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if thread::current().name() == Some(ORACLE_THREAD) {
                return;
            }
            previous(info);
        }));
    });
}

/// Runs `body` on a sacrificial thread; a panic becomes `Err(message)`.
///
/// The closure must own everything it touches (`'static`): callers clone
/// the specification into it.
pub fn capture<T, F>(body: F) -> Result<T, String>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    install_quiet_hook();
    let handle = thread::Builder::new()
        .name(ORACLE_THREAD.to_string())
        .spawn(body)
        .expect("spawn oracle thread");
    handle.join().map_err(|payload| {
        if let Some(message) = payload.downcast_ref::<&str>() {
            (*message).to_string()
        } else if let Some(message) = payload.downcast_ref::<String>() {
            message.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_the_value() {
        assert_eq!(capture(|| 41 + 1), Ok(42));
    }

    #[test]
    fn recovers_the_panic_message() {
        let err = capture(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
    }

    #[test]
    fn recovers_static_str_payloads() {
        let err = capture(|| -> u32 { panic!("plain") }).unwrap_err();
        assert_eq!(err, "plain");
    }
}
