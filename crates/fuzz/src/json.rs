//! A minimal JSON tree for the minimizer and the corpus files.
//!
//! The vendored `serde_json` stand-in (de)serializes typed values only —
//! it has no untyped `Value`. The delta-debugging minimizer, however,
//! needs to drop elements from three arrays of a serialized specification
//! *without* understanding the rest of the document, and the corpus files
//! embed a specification subtree inside their own envelope. This module
//! provides exactly that: parse, navigate, edit, render. Rendering is
//! deterministic (object member order is preserved, numbers are kept as
//! their source tokens), so minimizer output is byte-stable.

use std::fmt::Write as _;

/// An untyped JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source token so rendering never reformats.
    Number(String),
    /// A string (decoded).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses `input` as a single JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders the document compactly (no insignificant whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_into(self, &mut out);
        out
    }

    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a path of object members.
    #[must_use]
    pub fn at_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |node, key| node.get(key))
    }

    /// Mutable [`Json::at_path`].
    pub fn at_path_mut(&mut self, path: &[&str]) -> Option<&mut Json> {
        path.iter().try_fold(self, |node, key| match node {
            Json::Object(members) => members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        })
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable [`Json::as_array`].
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The decoded string, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, when this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(token) => token.parse().ok(),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Number),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF8 number")?;
    // Validate via the platform parser: every JSON number is a valid f64
    // token (range loss does not matter — the token is kept verbatim).
    token
        .parse::<f64>()
        .map_err(|_| format!("malformed number `{token}` at byte {start}"))?;
    Ok(token.to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected `\"` at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: the low half must follow.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err("unpaired surrogate escape".to_string());
                            }
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "invalid unicode escape".to_string())?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Consume one UTF-8 sequence verbatim.
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(bytes.len());
                let chunk =
                    std::str::from_utf8(&bytes[*pos..end]).map_err(|_| "non-UTF8 string")?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))
}

fn render_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(token) => out.push_str(token),
        Json::Str(s) => render_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (k, (key, member)) in members.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render_into(member, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_spec_document() {
        let spec = flexplore_models::set_top_box().spec;
        let text = flexplore_models::spec_to_json(&spec).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let rendered = parsed.render();
        // The re-rendered text must still be the same specification.
        let reloaded = flexplore_models::spec_from_json(&rendered).unwrap();
        assert_eq!(
            flexplore_models::spec_to_json(&reloaded).unwrap(),
            flexplore_models::spec_to_json(&spec).unwrap()
        );
    }

    #[test]
    fn navigates_paths() {
        let doc = Json::parse(r#"{"a":{"b":[1,2,3]},"s":"x\n"}"#).unwrap();
        assert_eq!(
            doc.at_path(&["a", "b"]).unwrap().as_array().unwrap().len(),
            3
        );
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\n"));
        assert_eq!(doc.at_path(&["a", "b"]).and_then(|v| v.get("c")), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn renders_escapes() {
        let doc = Json::parse(r#"["a\"b\\c"]"#).unwrap();
        let rendered = doc.render();
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }
}
