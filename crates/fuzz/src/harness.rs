//! The fuzzing campaign driver.

use crate::corpus::ReproCase;
use crate::minimize::minimize;
use crate::oracles::{check_all, OracleKind};
use crate::profile::{generate, DomainProfile};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Options of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; per-iteration seeds are derived deterministically.
    pub seed: u64,
    /// Iterations **per profile**.
    pub iterations: u64,
    /// Profiles to draw from.
    pub profiles: Vec<DomainProfile>,
    /// Worker threads for the primary explore runs (output-invariant).
    pub threads: usize,
    /// Where to write minimized repros (`None` reports without writing).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 42,
            iterations: 100,
            profiles: DomainProfile::all().to_vec(),
            threads: 1,
            corpus_dir: None,
        }
    }
}

/// One recorded violation of a campaign.
#[derive(Debug, Clone)]
pub struct ViolationRecord {
    /// The profile whose spec violated.
    pub profile: DomainProfile,
    /// The derived per-iteration seed (reproduce with
    /// [`generate`]`(profile, seed)`).
    pub seed: u64,
    /// The violated oracle.
    pub oracle: OracleKind,
    /// The violation's evidence.
    pub detail: String,
    /// The minimized specification (compact JSON).
    pub minimized_spec: String,
    /// The corpus file written for this record, if any.
    pub corpus_file: Option<String>,
}

/// Deterministic result of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Specifications generated (iterations × profiles).
    pub specs: u64,
    /// Oracle checks executed.
    pub oracle_checks: u64,
    /// All violations, in discovery order.
    pub violations: Vec<ViolationRecord>,
}

impl FuzzReport {
    /// `true` when no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic text rendering: no timing, no absolute paths — two
    /// runs with equal options produce byte-identical output.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "violation [{}] profile {} seed {}: {}",
                v.oracle, v.profile, v.seed, v.detail
            );
            if let Some(file) = &v.corpus_file {
                let _ = writeln!(out, "  minimized repro: {file}");
            }
        }
        let _ = writeln!(
            out,
            "fuzzed {} spec(s), {} oracle check(s), {} violation(s)",
            self.specs,
            self.oracle_checks,
            self.violations.len()
        );
        out
    }
}

/// SplitMix64: the per-iteration seed derivation (a bijective mixer, so
/// distinct `(profile, iteration)` pairs cannot collide for a fixed base
/// seed).
#[must_use]
pub fn derive_seed(base: u64, salt: u64, iteration: u64) -> u64 {
    let mut z = base
        .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(iteration.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs a fuzzing campaign: generate → all oracles → minimize → record
/// (and optionally write a corpus repro) for every violation.
#[must_use]
pub fn run_fuzz(options: &FuzzOptions) -> FuzzReport {
    let mut report = FuzzReport::default();
    for &profile in &options.profiles {
        for iteration in 0..options.iterations {
            let seed = derive_seed(options.seed, profile.salt(), iteration);
            let spec = generate(profile, seed);
            report.specs += 1;
            report.oracle_checks += OracleKind::all().len() as u64;
            for violation in check_all(&spec, options.threads) {
                let minimized_spec = minimize(&spec, violation.oracle);
                let mut record = ViolationRecord {
                    profile,
                    seed,
                    oracle: violation.oracle,
                    detail: violation.detail,
                    minimized_spec,
                    corpus_file: None,
                };
                if let Some(dir) = &options.corpus_dir {
                    let case = ReproCase {
                        profile: profile.name().to_string(),
                        seed,
                        oracle: record.oracle.name().to_string(),
                        detail: record.detail.clone(),
                        spec_json: record.minimized_spec.clone(),
                    };
                    match case.write_into(dir) {
                        Ok(_) => record.corpus_file = Some(case.file_name()),
                        Err(e) => record
                            .detail
                            .push_str(&format!(" (corpus write failed: {e})")),
                    }
                }
                report.violations.push(record);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_stable() {
        assert_eq!(derive_seed(42, 1, 0), derive_seed(42, 1, 0));
        assert_ne!(derive_seed(42, 1, 0), derive_seed(42, 1, 1));
        assert_ne!(derive_seed(42, 1, 0), derive_seed(42, 2, 0));
        assert_ne!(derive_seed(42, 1, 0), derive_seed(43, 1, 0));
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let options = FuzzOptions {
            seed: 42,
            iterations: 3,
            profiles: DomainProfile::all().to_vec(),
            threads: 1,
            corpus_dir: None,
        };
        let a = run_fuzz(&options);
        let b = run_fuzz(&options);
        assert!(a.is_clean(), "{}", a.render_text());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.specs, 15);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let mut options = FuzzOptions {
            iterations: 2,
            ..FuzzOptions::default()
        };
        options.threads = 1;
        let one = run_fuzz(&options);
        options.threads = 4;
        let four = run_fuzz(&options);
        assert_eq!(one.render_text(), four.render_text());
    }
}
