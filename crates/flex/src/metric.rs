//! The flexibility metric (Definition 4 of the paper).
//!
//! For a cluster `γ` with future-activation indicator `a⁺(γ) ∈ {0,1}`:
//!
//! ```text
//! f(γ) = a⁺(γ) · ( Σ_{ψ ∈ γ.Ψ} Σ_{γ̂ ∈ ψ.Γ} f(γ̂) − (|γ.Ψ| − 1) )   if γ.Ψ ≠ ∅
//! f(γ) = a⁺(γ) · 1                                                  otherwise
//! ```
//!
//! The whole problem graph is treated as an (always-activated) outermost
//! cluster. Two evaluation variants are provided:
//!
//! * [`flexibility`] — the *normalized* semantics used by the exploration:
//!   a cluster contributes 0 if it is not activatable **or** if one of its
//!   interfaces has no activatable cluster (such a cluster can never
//!   execute, matching the paper's remark that *"a cluster only contributes
//!   to the total flexibility if it is bindable"*). On consistent
//!   activation sets this coincides with Definition 4.
//! * [`flexibility_def4_raw`] — the literal formula, evaluated in signed
//!   arithmetic, for cross-checking.

use flexplore_hgraph::{ClusterId, HierarchicalGraph, InterfaceId, Scope};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A flexibility value (a count of implementable behavioral alternatives).
pub type Flexibility = u64;

/// Computes the flexibility of the whole graph under the activation
/// indicator `active` (the `a⁺` of Definition 4), with the normalized
/// zero-propagation semantics described in the module docs.
///
/// # Examples
///
/// A single interface with three activatable clusters has flexibility 3:
///
/// ```
/// use flexplore_flex::flexibility;
/// use flexplore_hgraph::{HierarchicalGraph, Scope};
///
/// let mut g: HierarchicalGraph<(), ()> = HierarchicalGraph::new("g");
/// let i = g.add_interface(Scope::Top, "I");
/// for k in 0..3 {
///     let c = g.add_cluster(i, format!("c{k}"));
///     g.add_vertex(c.into(), format!("v{k}"), ());
/// }
/// assert_eq!(flexibility(&g, |_| true), 3);
/// assert_eq!(flexibility(&g, |_| false), 0);
/// ```
pub fn flexibility<N, E>(
    graph: &HierarchicalGraph<N, E>,
    active: impl Fn(ClusterId) -> bool,
) -> Flexibility {
    scope_flexibility(graph, Scope::Top, &active).unwrap_or(0)
}

/// Computes the flexibility of one cluster under the activation indicator,
/// normalized semantics.
pub fn cluster_flexibility<N, E>(
    graph: &HierarchicalGraph<N, E>,
    cluster: ClusterId,
    active: impl Fn(ClusterId) -> bool,
) -> Flexibility {
    cluster_flex_impl(graph, cluster, &active).unwrap_or(0)
}

/// The maximal flexibility of the graph: Definition 4 with `a⁺ ≡ 1`
/// (*"If all clusters can be activated in future implementations"*).
pub fn max_flexibility<N, E>(graph: &HierarchicalGraph<N, E>) -> Flexibility {
    flexibility(graph, |_| true)
}

/// `None` means "cannot execute" (contributes 0 and poisons the enclosing
/// cluster's interface sum if it was the only alternative).
fn cluster_flex_impl<N, E>(
    graph: &HierarchicalGraph<N, E>,
    cluster: ClusterId,
    active: &impl Fn(ClusterId) -> bool,
) -> Option<Flexibility> {
    if !active(cluster) {
        return None;
    }
    scope_flexibility(graph, Scope::Cluster(cluster), active)
}

/// Flexibility of a scope's interface structure (the body of Definition 4).
fn scope_flexibility<N, E>(
    graph: &HierarchicalGraph<N, E>,
    scope: Scope,
    active: &impl Fn(ClusterId) -> bool,
) -> Option<Flexibility> {
    let interfaces: Vec<InterfaceId> = graph.interfaces_in(scope).collect();
    if interfaces.is_empty() {
        return Some(1);
    }
    let mut total: Flexibility = 0;
    for i in &interfaces {
        let sum: Flexibility = graph
            .clusters_of(*i)
            .iter()
            .filter_map(|&c| cluster_flex_impl(graph, c, active))
            .sum();
        if sum == 0 {
            // An interface with no executable alternative makes the whole
            // scope unexecutable.
            return None;
        }
        total += sum;
    }
    Some(total - (interfaces.len() as Flexibility - 1))
}

/// The literal Definition 4 in signed arithmetic, without
/// zero-propagation: interfaces whose alternatives are all inactive
/// contribute 0 to the sum while still counting towards `|γ.Ψ| − 1`.
///
/// Provided for cross-checking against [`flexibility`]; on *consistent*
/// activation sets (every activatable cluster's interfaces each retain at
/// least one activatable cluster, recursively) the two agree.
pub fn flexibility_def4_raw<N, E>(
    graph: &HierarchicalGraph<N, E>,
    active: impl Fn(ClusterId) -> bool,
) -> i64 {
    raw_scope_flex(graph, Scope::Top, &active)
}

fn raw_scope_flex<N, E>(
    graph: &HierarchicalGraph<N, E>,
    scope: Scope,
    active: &impl Fn(ClusterId) -> bool,
) -> i64 {
    let interfaces: Vec<InterfaceId> = graph.interfaces_in(scope).collect();
    if interfaces.is_empty() {
        return 1;
    }
    let sum: i64 = interfaces
        .iter()
        .map(|&i| {
            graph
                .clusters_of(i)
                .iter()
                .map(|&c| {
                    if active(c) {
                        raw_scope_flex(graph, Scope::Cluster(c), active)
                    } else {
                        0
                    }
                })
                .sum::<i64>()
        })
        .sum();
    sum - (interfaces.len() as i64 - 1)
}

/// Per-cluster weights for the weighted flexibility variant mentioned in
/// footnote 2 of the paper (*"more sophisticated flexibility calculations
/// are possible, e.g., by using weighted sums"*).
///
/// Leaf clusters contribute their weight instead of 1; the interface
/// deduction `|γ.Ψ| − 1` is scaled by the default weight so that uniform
/// weights `w` scale the unweighted flexibility by `w`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlexibilityWeights {
    default: f64,
    overrides: BTreeMap<ClusterId, f64>,
}

impl Default for FlexibilityWeights {
    fn default() -> Self {
        FlexibilityWeights {
            default: 1.0,
            overrides: BTreeMap::new(),
        }
    }
}

impl FlexibilityWeights {
    /// Uniform weights of 1.0 (equals the unweighted metric).
    #[must_use]
    pub fn new() -> Self {
        FlexibilityWeights::default()
    }

    /// Uniform weights of `default`.
    ///
    /// # Panics
    ///
    /// Panics if `default` is negative or not finite.
    #[must_use]
    pub fn uniform(default: f64) -> Self {
        assert!(
            default.is_finite() && default >= 0.0,
            "weights must be finite and non-negative"
        );
        FlexibilityWeights {
            default,
            overrides: BTreeMap::new(),
        }
    }

    /// Builder: overrides the weight of one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    #[must_use]
    pub fn with(mut self, cluster: ClusterId, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative"
        );
        self.overrides.insert(cluster, weight);
        self
    }

    /// Returns the weight of `cluster`.
    #[must_use]
    pub fn weight(&self, cluster: ClusterId) -> f64 {
        self.overrides
            .get(&cluster)
            .copied()
            .unwrap_or(self.default)
    }

    /// Returns the default weight.
    #[must_use]
    pub fn default_weight(&self) -> f64 {
        self.default
    }
}

/// Weighted flexibility of the whole graph (footnote 2 variant), normalized
/// semantics.
///
/// Activatable leaf clusters contribute `w(γ)`; branch clusters contribute
/// `w(γ)/w_default · (Σ − w_default · (|Ψ|−1))`… — concretely, the
/// recursion mirrors [`flexibility`] with `1 → w(γ)` at leaves and the
/// interface deduction scaled by the default weight.
pub fn weighted_flexibility<N, E>(
    graph: &HierarchicalGraph<N, E>,
    weights: &FlexibilityWeights,
    active: impl Fn(ClusterId) -> bool,
) -> f64 {
    weighted_scope_flex(graph, Scope::Top, weights, 1.0, &active).unwrap_or(0.0)
}

fn weighted_scope_flex<N, E>(
    graph: &HierarchicalGraph<N, E>,
    scope: Scope,
    weights: &FlexibilityWeights,
    own_weight: f64,
    active: &impl Fn(ClusterId) -> bool,
) -> Option<f64> {
    let interfaces: Vec<InterfaceId> = graph.interfaces_in(scope).collect();
    if interfaces.is_empty() {
        return Some(own_weight);
    }
    let mut total = 0.0;
    for i in &interfaces {
        let mut sum = 0.0;
        for &c in graph.clusters_of(*i) {
            if !active(c) {
                continue;
            }
            if let Some(v) =
                weighted_scope_flex(graph, Scope::Cluster(c), weights, weights.weight(c), active)
            {
                sum += v;
            }
        }
        if sum == 0.0 {
            return None;
        }
        total += sum;
    }
    Some(total - weights.default_weight() * (interfaces.len() as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_hgraph::HierarchicalGraph;
    use std::collections::BTreeSet;

    /// Builds the Fig. 3 problem graph skeleton: one application interface
    /// with clusters γ_I (leaf), γ_G (interface I_G with 3 clusters) and
    /// γ_D (interfaces I_D with 3 and I_U with 2 clusters).
    fn fig3() -> (HierarchicalGraph<(), ()>, BTreeMap<&'static str, ClusterId>) {
        let mut g = HierarchicalGraph::new("fig3");
        let mut names = BTreeMap::new();
        let app = g.add_interface(Scope::Top, "I_app");
        // Internet browser: leaf cluster.
        let gi = g.add_cluster(app, "gamma_I");
        g.add_vertex(gi.into(), "P_P", ());
        names.insert("I", gi);
        // Game console: interface with three game classes.
        let gg = g.add_cluster(app, "gamma_G");
        let ig = g.add_interface(gg.into(), "I_G");
        for k in 1..=3 {
            let c = g.add_cluster(ig, format!("gamma_G{k}"));
            g.add_vertex(c.into(), format!("P_G{k}"), ());
            names.insert(["G1", "G2", "G3"][k - 1], c);
        }
        names.insert("G", gg);
        // Digital TV: two interfaces (decrypt x3, uncompress x2).
        let gd = g.add_cluster(app, "gamma_D");
        let id = g.add_interface(gd.into(), "I_D");
        for k in 1..=3 {
            let c = g.add_cluster(id, format!("gamma_D{k}"));
            g.add_vertex(c.into(), format!("P_D{k}"), ());
            names.insert(["D1", "D2", "D3"][k - 1], c);
        }
        let iu = g.add_interface(gd.into(), "I_U");
        for k in 1..=2 {
            let c = g.add_cluster(iu, format!("gamma_U{k}"));
            g.add_vertex(c.into(), format!("P_U{k}"), ());
            names.insert(["U1", "U2"][k - 1], c);
        }
        names.insert("D", gd);
        (g, names)
    }

    #[test]
    fn fig3_max_flexibility_is_8() {
        let (g, _) = fig3();
        assert_eq!(max_flexibility(&g), 8);
    }

    #[test]
    fn fig3_without_game_cluster_is_5() {
        let (g, names) = fig3();
        let gg = names["G"];
        assert_eq!(flexibility(&g, |c| c != gg), 5);
    }

    #[test]
    fn fig3_subset_activations() {
        let (g, names) = fig3();
        // Only Internet browser: f = 1 (γ_G, γ_D contribute 0 since all
        // their clusters are off... they themselves are off).
        let on = BTreeSet::from([names["I"]]);
        assert_eq!(flexibility(&g, |c| on.contains(&c)), 1);
        // γ_I + γ_D with D1, U1 only: 1 + (1 + 1 - 1) = 2 (the paper's
        // first Pareto point).
        let on = BTreeSet::from([names["I"], names["D"], names["D1"], names["U1"]]);
        assert_eq!(flexibility(&g, |c| on.contains(&c)), 2);
        // Add γ_G with G1: f = 3 (second Pareto point).
        let on = BTreeSet::from([
            names["I"],
            names["D"],
            names["D1"],
            names["U1"],
            names["G"],
            names["G1"],
        ]);
        assert_eq!(flexibility(&g, |c| on.contains(&c)), 3);
        // Add U2: f = 4 (third Pareto point).
        let on = BTreeSet::from([
            names["I"],
            names["D"],
            names["D1"],
            names["U1"],
            names["U2"],
            names["G"],
            names["G1"],
        ]);
        assert_eq!(flexibility(&g, |c| on.contains(&c)), 4);
    }

    #[test]
    fn inconsistent_activation_poisons_cluster() {
        let (g, names) = fig3();
        // γ_D active but no decryption cluster active: γ_D cannot execute,
        // so only γ_I counts.
        let on = BTreeSet::from([names["I"], names["D"], names["U1"], names["U2"]]);
        assert_eq!(flexibility(&g, |c| on.contains(&c)), 1);
    }

    #[test]
    fn raw_def4_matches_on_consistent_sets() {
        let (g, names) = fig3();
        let on = BTreeSet::from([
            names["I"],
            names["D"],
            names["D1"],
            names["D3"],
            names["U1"],
            names["G"],
            names["G2"],
        ]);
        let norm = flexibility(&g, |c| on.contains(&c));
        let raw = flexibility_def4_raw(&g, |c| on.contains(&c));
        assert_eq!(norm as i64, raw);
        assert_eq!(norm, 1 + 1 + (2 + 1 - 1)); // γI=1, γG{G2}=1, γD{D1,D3,U1}=2
    }

    #[test]
    fn raw_def4_can_disagree_on_inconsistent_sets() {
        let (g, names) = fig3();
        // γ_D active, decryption empty: raw gives 0+2-1 = 1 for γ_D, so
        // raw total = 1 + 1 = 2 while normalized gives 1.
        let on = BTreeSet::from([names["I"], names["D"], names["U1"], names["U2"]]);
        assert_eq!(flexibility(&g, |c| on.contains(&c)), 1);
        assert_eq!(flexibility_def4_raw(&g, |c| on.contains(&c)), 2);
    }

    #[test]
    fn flat_graph_has_flexibility_1() {
        let mut g: HierarchicalGraph<(), ()> = HierarchicalGraph::new("flat");
        g.add_vertex(Scope::Top, "a", ());
        g.add_vertex(Scope::Top, "b", ());
        assert_eq!(max_flexibility(&g), 1);
    }

    #[test]
    fn cluster_flexibility_of_subtrees() {
        let (g, names) = fig3();
        assert_eq!(cluster_flexibility(&g, names["D"], |_| true), 4);
        assert_eq!(cluster_flexibility(&g, names["G"], |_| true), 3);
        assert_eq!(cluster_flexibility(&g, names["I"], |_| true), 1);
        assert_eq!(cluster_flexibility(&g, names["D"], |c| c != names["D"]), 0);
    }

    #[test]
    fn uniform_weights_scale_flexibility() {
        let (g, _) = fig3();
        let w = FlexibilityWeights::uniform(2.0);
        let weighted = weighted_flexibility(&g, &w, |_| true);
        assert!((weighted - 16.0).abs() < 1e-9);
        let unit = weighted_flexibility(&g, &FlexibilityWeights::new(), |_| true);
        assert!((unit - 8.0).abs() < 1e-9);
    }

    #[test]
    fn weight_override_biases_one_alternative() {
        let (g, names) = fig3();
        // Valuing the third decryption algorithm at 3 adds 2 over uniform.
        let w = FlexibilityWeights::new().with(names["D3"], 3.0);
        assert_eq!(w.weight(names["D3"]), 3.0);
        assert_eq!(w.weight(names["D1"]), 1.0);
        let weighted = weighted_flexibility(&g, &w, |_| true);
        assert!((weighted - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        let _ = FlexibilityWeights::uniform(-1.0);
    }

    #[test]
    fn adding_alternatives_is_monotone() {
        let (g, names) = fig3();
        let mut on = BTreeSet::from([names["I"]]);
        let mut last = flexibility(&g, |c| on.contains(&c));
        for key in ["D", "D1", "U1", "U2", "D2", "D3", "G", "G1", "G2", "G3"] {
            on.insert(names[key]);
            let now = flexibility(&g, |c| on.contains(&c));
            assert!(now >= last, "adding {key} decreased flexibility");
            last = now;
        }
        assert_eq!(last, 8);
    }
}
