//! The flexibility metric of *"System Design for Flexibility"* (Haubelt,
//! Teich, Richter, Ernst — DATE 2002).
//!
//! *Flexibility* quantifies the functional richness a system can implement:
//! the number of behavioral alternatives reachable through cluster
//! selection in its hierarchical problem graph (Definition 4 of the paper).
//! The crate provides
//!
//! * [`flexibility`] / [`cluster_flexibility`] / [`max_flexibility`] — the
//!   metric under an arbitrary future-activation indicator `a⁺`,
//! * [`flexibility_def4_raw`] — the literal Definition 4 formula for
//!   cross-checking,
//! * [`weighted_flexibility`] — the weighted-sum variant of footnote 2,
//! * [`estimate_flexibility`] — the upper-bound estimation over a reduced
//!   specification that drives the EXPLORE pruning rule.
//!
//! # Examples
//!
//! The paper's Fig. 3 Set-Top box has maximal flexibility 8; dropping the
//! game-console cluster reduces it to 5:
//!
//! ```
//! use flexplore_flex::{flexibility, max_flexibility};
//! use flexplore_hgraph::{HierarchicalGraph, Scope};
//!
//! let mut g: HierarchicalGraph<(), ()> = HierarchicalGraph::new("set-top");
//! let app = g.add_interface(Scope::Top, "I_app");
//! let browser = g.add_cluster(app, "gamma_I");
//! let game = g.add_cluster(app, "gamma_G");
//! let i_g = g.add_interface(game.into(), "I_G");
//! for k in 1..=3 { g.add_cluster(i_g, format!("gamma_G{k}")); }
//! let tv = g.add_cluster(app, "gamma_D");
//! let i_d = g.add_interface(tv.into(), "I_D");
//! for k in 1..=3 { g.add_cluster(i_d, format!("gamma_D{k}")); }
//! let i_u = g.add_interface(tv.into(), "I_U");
//! for k in 1..=2 { g.add_cluster(i_u, format!("gamma_U{k}")); }
//!
//! assert_eq!(max_flexibility(&g), 8);
//! assert_eq!(flexibility(&g, |c| c != game), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod estimate;
mod incremental;
mod metric;
mod profile;

pub use estimate::{
    estimate_flexibility, estimate_with_available, estimate_with_compiled,
    estimate_with_unit_masks, FlexibilityEstimate,
};
pub use incremental::{DeltaEstimator, DeltaIndex};
pub use metric::{
    cluster_flexibility, flexibility, flexibility_def4_raw, max_flexibility, weighted_flexibility,
    Flexibility, FlexibilityWeights,
};
pub use profile::{flexibility_profile, ClusterContribution};
