//! Incremental (delta) flexibility estimation for the lattice search.
//!
//! The branch-and-bound enumeration walks the allocation lattice one unit
//! at a time: each DFS step adds or removes a single unit from the current
//! subset. Recomputing [`estimate_with_unit_masks`] from scratch at every
//! node costs a full traversal of the problem hierarchy; this module
//! maintains the estimate's *feasibility skeleton* under single-unit
//! deltas instead, so each step is `O(|vertices covered by the unit|)` and
//! the feasibility question is `O(1)`.
//!
//! # Representation
//!
//! [`DeltaIndex`] compiles, once per enumeration:
//!
//! * an inverted coverage table — for each unit, the problem vertices it
//!   can implement (the transpose of [`UnitMasks::coverage`]),
//! * the hierarchy topology as flat arrays — each vertex's and interface's
//!   enclosing scope, each cluster's parent interface,
//! * the initial counter state for the empty allocation.
//!
//! [`DeltaEstimator`] then tracks, per cluster, a single `blockers` count
//! (unbindable direct processes + direct interfaces with no activatable
//! cluster); a cluster is activatable iff `blockers == 0`. Pushing a unit
//! increments the support count of every vertex it covers; a `0 → 1` flip
//! removes a blocker from the vertex's scope, which may flip the enclosing
//! cluster to activatable and propagate up the hierarchy. Popping reverses
//! the walk exactly, so push/pop pairs restore the state bit for bit.
//!
//! # Contract with the non-incremental estimate
//!
//! [`DeltaEstimator::feasible`] equals
//! `estimate_with_unit_masks(..).feasible` for the tracked mask, and
//! [`DeltaEstimator::materialize`] reproduces the full
//! [`FlexibilityEstimate`] *byte for byte*: it re-runs the same
//! short-circuiting traversal over the index's flattened topology arrays,
//! with the per-vertex bindability checks replaced by the tracked `O(1)`
//! counters (which agree with `coverage(v) ∩ mask ≠ ∅` by construction) —
//! no hierarchy iterators and no per-node allocations. Units outside
//! [`UnitMasks::estimate_relevant_mask`] cover no vertex, so pushing them
//! is a state no-op — memoizing on `mask ∩ estimate_relevant` stays sound.

use crate::estimate::FlexibilityEstimate;
use crate::metric::Flexibility;
use flexplore_hgraph::{ClusterId, NodeRef, Scope};
use flexplore_spec::{CompiledSpec, UnitMask, UnitMasks};
use std::collections::BTreeSet;

/// Scope of a vertex or interface, flattened for array indexing: `None`
/// is the top level, `Some(c)` the cluster with arena index `c`.
type ScopeSlot = Option<u32>;

/// Immutable side tables for delta estimation over a fixed unit universe.
///
/// Built once per enumeration by [`DeltaIndex::new`]; many
/// [`DeltaEstimator`]s (e.g. one per worker thread) can borrow the same
/// index concurrently.
#[derive(Debug)]
pub struct DeltaIndex<'a> {
    compiled: &'a CompiledSpec<'a>,
    /// Per unit: indices of the problem vertices it covers.
    unit_covers: Vec<Vec<u32>>,
    /// Per problem vertex: its enclosing scope.
    vertex_scope: Vec<ScopeSlot>,
    /// Per cluster: its parent interface's arena index.
    cluster_interface: Vec<u32>,
    /// Per interface: its enclosing scope.
    interface_scope: Vec<ScopeSlot>,
    /// Per cluster: its direct interfaces, in hierarchy iteration order.
    cluster_interfaces: Vec<Vec<u32>>,
    /// Per interface: its clusters, in hierarchy iteration order.
    interface_clusters: Vec<Vec<u32>>,
    /// The top-level interfaces, in hierarchy iteration order.
    top_interfaces: Vec<u32>,
    /// Arena index → [`ClusterId`], for building the activatable set.
    cluster_ids: Vec<ClusterId>,
    /// Counter state for the empty allocation.
    init_blockers: Vec<u32>,
    init_vertex_blockers: Vec<u32>,
    init_ok_children: Vec<u32>,
    init_top_blockers: u32,
}

impl<'a> DeltaIndex<'a> {
    /// Compiles the inverted coverage table and hierarchy topology of the
    /// problem graph for the unit universe described by `masks`.
    #[must_use]
    pub fn new(compiled: &'a CompiledSpec<'a>, masks: &UnitMasks) -> Self {
        let graph = compiled.spec().problem().graph();
        let mut unit_covers = vec![Vec::new(); masks.unit_count()];
        let mut vertex_scope = vec![None; graph.vertex_count()];
        for v in graph.vertex_ids() {
            for k in masks.coverage(v).iter_ones() {
                unit_covers[k].push(v.index() as u32);
            }
            vertex_scope[v.index()] = match graph.scope_of(NodeRef::Vertex(v)) {
                Scope::Top => None,
                Scope::Cluster(c) => Some(c.index() as u32),
            };
        }
        let cluster_interface = graph
            .cluster_ids()
            .map(|c| graph.interface_of(c).index() as u32)
            .collect();
        let interface_scope = graph
            .interface_ids()
            .map(|i| match graph.scope_of(NodeRef::Interface(i)) {
                Scope::Top => None,
                Scope::Cluster(c) => Some(c.index() as u32),
            })
            .collect();

        // Flattened topology, preserving the hierarchy's iteration order so
        // the materialized traversal visits (and short-circuits) exactly
        // like the non-incremental estimate.
        let mut interface_clusters = vec![Vec::new(); graph.interface_count()];
        for i in graph.interface_ids() {
            interface_clusters[i.index()] = graph
                .clusters_of(i)
                .iter()
                .map(|c| c.index() as u32)
                .collect();
        }
        let mut cluster_interfaces = vec![Vec::new(); graph.cluster_count()];
        let mut init_vertex_blockers = vec![0u32; graph.cluster_count()];
        let cluster_ids: Vec<ClusterId> = graph.cluster_ids().collect();
        for &c in &cluster_ids {
            let scope = Scope::Cluster(c);
            cluster_interfaces[c.index()] = graph
                .interfaces_in(scope)
                .map(|i| i.index() as u32)
                .collect();
            init_vertex_blockers[c.index()] = graph.vertices_in(scope).count() as u32;
        }
        let top_interfaces: Vec<u32> = graph
            .interfaces_in(Scope::Top)
            .map(|i| i.index() as u32)
            .collect();

        // Empty-allocation counters, bottom-up: every process is
        // unbindable, so a cluster starts with one blocker per direct
        // process plus one per direct interface that has no activatable
        // cluster (a process-free, interface-free cluster is activatable
        // from the start).
        let mut init_blockers = vec![0u32; graph.cluster_count()];
        let mut init_ok_children = vec![0u32; graph.interface_count()];
        fn cluster_ok<N, E>(
            graph: &flexplore_hgraph::HierarchicalGraph<N, E>,
            blockers: &mut [u32],
            ok_children: &mut [u32],
            cluster: flexplore_hgraph::ClusterId,
        ) -> bool {
            let scope = Scope::Cluster(cluster);
            let mut count = graph.vertices_in(scope).count() as u32;
            let interfaces: Vec<_> = graph.interfaces_in(scope).collect();
            for i in interfaces {
                let mut ok = 0u32;
                let clusters = graph.clusters_of(i).to_vec();
                for c in clusters {
                    if cluster_ok(graph, blockers, ok_children, c) {
                        ok += 1;
                    }
                }
                ok_children[i.index()] = ok;
                if ok == 0 {
                    count += 1;
                }
            }
            blockers[cluster.index()] = count;
            count == 0
        }
        let mut init_top_blockers = graph.vertices_in(Scope::Top).count() as u32;
        let top_ids: Vec<_> = graph.interfaces_in(Scope::Top).collect();
        for i in top_ids {
            let mut ok = 0u32;
            let clusters = graph.clusters_of(i).to_vec();
            for c in clusters {
                if cluster_ok(graph, &mut init_blockers, &mut init_ok_children, c) {
                    ok += 1;
                }
            }
            init_ok_children[i.index()] = ok;
            if ok == 0 {
                init_top_blockers += 1;
            }
        }

        DeltaIndex {
            compiled,
            unit_covers,
            vertex_scope,
            cluster_interface,
            interface_scope,
            cluster_interfaces,
            interface_clusters,
            top_interfaces,
            cluster_ids,
            init_blockers,
            init_vertex_blockers,
            init_ok_children,
            init_top_blockers,
        }
    }

    /// The compiled specification the index was built over.
    #[must_use]
    pub fn compiled(&self) -> &'a CompiledSpec<'a> {
        self.compiled
    }

    /// The problem vertices unit `k` covers, as dense `VertexId::index()`
    /// values — the inverted coverage table the static lattice analysis
    /// reuses to reason about sole coverage and coverage containment.
    #[must_use]
    pub fn unit_covers(&self, k: usize) -> &[u32] {
        &self.unit_covers[k]
    }
}

/// Mutable estimate state tracking one allocation mask under single-unit
/// push/pop deltas along a DFS path.
#[derive(Debug, Clone)]
pub struct DeltaEstimator<'a> {
    index: &'a DeltaIndex<'a>,
    /// Per problem vertex: number of tracked units covering it.
    support: Vec<u32>,
    /// Per cluster: unbindable direct processes + dead direct interfaces.
    blockers: Vec<u32>,
    /// Per cluster: unbindable direct processes alone — the materialized
    /// traversal's `O(1)` stand-in for the per-vertex bindability scan.
    vertex_blockers: Vec<u32>,
    /// Per interface: number of activatable clusters.
    ok_children: Vec<u32>,
    top_blockers: u32,
    pushes: u64,
}

impl<'a> DeltaEstimator<'a> {
    /// A fresh estimator tracking the empty allocation.
    #[must_use]
    pub fn new(index: &'a DeltaIndex<'a>) -> Self {
        DeltaEstimator {
            index,
            support: vec![0; index.vertex_scope.len()],
            blockers: index.init_blockers.clone(),
            vertex_blockers: index.init_vertex_blockers.clone(),
            ok_children: index.init_ok_children.clone(),
            top_blockers: index.init_top_blockers,
            pushes: 0,
        }
    }

    /// Adds unit `k` to the tracked mask. Pushing a unit twice is allowed
    /// (support counts stack); each push must be balanced by one
    /// [`DeltaEstimator::pop_unit`].
    pub fn push_unit(&mut self, k: usize) {
        self.pushes += 1;
        let covers = &self.index.unit_covers[k];
        for &vi in covers {
            let s = &mut self.support[vi as usize];
            *s += 1;
            if *s == 1 {
                let scope = self.index.vertex_scope[vi as usize];
                if let Some(c) = scope {
                    self.vertex_blockers[c as usize] -= 1;
                }
                self.remove_blocker(scope);
            }
        }
    }

    /// Removes one push of unit `k` from the tracked mask.
    pub fn pop_unit(&mut self, k: usize) {
        let covers = &self.index.unit_covers[k];
        for &vi in covers {
            let s = &mut self.support[vi as usize];
            *s -= 1;
            if *s == 0 {
                let scope = self.index.vertex_scope[vi as usize];
                if let Some(c) = scope {
                    self.vertex_blockers[c as usize] += 1;
                }
                self.add_blocker(scope);
            }
        }
    }

    /// Pushes every unit in `mask` (one push per set bit).
    pub fn push_mask(&mut self, mask: UnitMask) {
        for k in mask.iter_ones() {
            self.push_unit(k);
        }
    }

    /// Pops every unit in `mask`, balancing one [`DeltaEstimator::push_mask`].
    pub fn pop_mask(&mut self, mask: UnitMask) {
        for k in mask.iter_ones() {
            self.pop_unit(k);
        }
    }

    /// `true` iff the tracked allocation supports a complete activation —
    /// equals `estimate_with_unit_masks(..).feasible` for the tracked
    /// mask, in `O(1)`.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.top_blockers == 0
    }

    /// Number of unit pushes applied over this estimator's lifetime.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Recomputes the full estimate for the tracked mask. Byte-identical
    /// to [`estimate_with_unit_masks`] at the same mask: the traversal is
    /// the same short-circuiting recursion, but over the index's flattened
    /// topology with every per-vertex scan replaced by a tracked counter —
    /// `O(explored clusters)` instead of a full hierarchy walk.
    ///
    /// [`estimate_with_unit_masks`]: crate::estimate_with_unit_masks
    #[must_use]
    pub fn materialize(&self) -> FlexibilityEstimate {
        let mut activatable = BTreeSet::new();
        let mut active = vec![false; self.index.cluster_ids.len()];
        for &i in &self.index.top_interfaces {
            for &c in &self.index.interface_clusters[i as usize] {
                if self.explore(c as usize, &mut activatable, &mut active) {
                    activatable.insert(self.index.cluster_ids[c as usize]);
                    active[c as usize] = true;
                }
            }
        }
        let feasible = self.top_blockers == 0;
        let value = if feasible {
            self.scope_flex(&self.index.top_interfaces, &active)
                .unwrap_or(0)
        } else {
            0
        };
        FlexibilityEstimate {
            feasible,
            value,
            activatable,
        }
    }

    /// The `cluster_ok` recursion of the non-incremental estimate, answered
    /// from counters: returns whether cluster `c` is activatable, inserting
    /// every activatable cluster the original traversal would have reached
    /// (short-circuiting on unbindable direct processes and on the first
    /// dead interface, exactly like the original).
    fn explore(
        &self,
        c: usize,
        activatable: &mut BTreeSet<ClusterId>,
        active: &mut [bool],
    ) -> bool {
        if self.vertex_blockers[c] > 0 {
            return false;
        }
        for &i in &self.index.cluster_interfaces[c] {
            for &j in &self.index.interface_clusters[i as usize] {
                if self.explore(j as usize, activatable, active) {
                    activatable.insert(self.index.cluster_ids[j as usize]);
                    active[j as usize] = true;
                }
            }
            if self.ok_children[i as usize] == 0 {
                return false;
            }
        }
        true
    }

    /// Definition 4 over the flattened topology, restricted to the `active`
    /// clusters — mirrors `flexibility`'s normalized zero-propagation
    /// semantics node for node.
    fn scope_flex(&self, interfaces: &[u32], active: &[bool]) -> Option<Flexibility> {
        if interfaces.is_empty() {
            return Some(1);
        }
        let mut total: Flexibility = 0;
        for &i in interfaces {
            let mut sum: Flexibility = 0;
            for &c in &self.index.interface_clusters[i as usize] {
                if active[c as usize] {
                    if let Some(v) =
                        self.scope_flex(&self.index.cluster_interfaces[c as usize], active)
                    {
                        sum += v;
                    }
                }
            }
            if sum == 0 {
                return None;
            }
            total += sum;
        }
        Some(total - (interfaces.len() as Flexibility - 1))
    }

    /// Upper bound on the flexibility value without the activatable set
    /// (still a full traversal; prefer [`DeltaEstimator::feasible`] for
    /// interior lattice nodes).
    #[must_use]
    pub fn value(&self) -> Flexibility {
        self.materialize().value
    }

    fn remove_blocker(&mut self, scope: ScopeSlot) {
        match scope {
            None => self.top_blockers -= 1,
            Some(c) => {
                let c = c as usize;
                self.blockers[c] -= 1;
                if self.blockers[c] == 0 {
                    // Cluster flipped to activatable.
                    let i = self.index.cluster_interface[c] as usize;
                    self.ok_children[i] += 1;
                    if self.ok_children[i] == 1 {
                        // Interface flipped to alive.
                        self.remove_blocker(self.index.interface_scope[i]);
                    }
                }
            }
        }
    }

    fn add_blocker(&mut self, scope: ScopeSlot) {
        match scope {
            None => self.top_blockers += 1,
            Some(c) => {
                let c = c as usize;
                if self.blockers[c] == 0 {
                    // Cluster flips to blocked.
                    let i = self.index.cluster_interface[c] as usize;
                    self.ok_children[i] -= 1;
                    if self.ok_children[i] == 0 {
                        // Interface flips to dead.
                        self.add_blocker(self.index.interface_scope[i]);
                    }
                }
                self.blockers[c] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_with_unit_masks;
    use flexplore_sched::Time;
    use flexplore_spec::{
        ArchitectureGraph, Cost, ProblemGraph, SpecificationGraph, Unit, UnitMask,
    };

    /// Nested fixture: top process P, interface I {c1: v1, c2: v2,
    /// c3: {J {j1: w1, j2: w2}}}; cpu maps P/v1/w1, asic maps v2/w2, and a
    /// third non-target DSP exercises the irrelevant-unit no-op.
    fn spec() -> SpecificationGraph {
        let mut p = ProblemGraph::new("p");
        let top = p.add_process(flexplore_hgraph::Scope::Top, "P");
        let i = p.add_interface(flexplore_hgraph::Scope::Top, "I");
        let c1 = p.add_cluster(i, "c1");
        let v1 = p.add_process(c1.into(), "v1");
        let c2 = p.add_cluster(i, "c2");
        let v2 = p.add_process(c2.into(), "v2");
        let c3 = p.add_cluster(i, "c3");
        let j = p.add_interface(c3.into(), "J");
        let j1 = p.add_cluster(j, "j1");
        let w1 = p.add_process(j1.into(), "w1");
        let j2 = p.add_cluster(j, "j2");
        let w2 = p.add_process(j2.into(), "w2");

        let mut a = ArchitectureGraph::new("a");
        let cpu = a.add_resource(flexplore_hgraph::Scope::Top, "cpu", Cost::new(100));
        let asic = a.add_resource(flexplore_hgraph::Scope::Top, "asic", Cost::new(200));
        let _dsp = a.add_resource(flexplore_hgraph::Scope::Top, "dsp", Cost::new(50));

        let mut s = SpecificationGraph::new("s", p, a);
        s.add_mapping(top, cpu, Time::from_ns(1)).unwrap();
        s.add_mapping(v1, cpu, Time::from_ns(1)).unwrap();
        s.add_mapping(v2, asic, Time::from_ns(1)).unwrap();
        s.add_mapping(w1, cpu, Time::from_ns(1)).unwrap();
        s.add_mapping(w2, asic, Time::from_ns(1)).unwrap();
        s
    }

    fn units_of(s: &SpecificationGraph) -> Vec<Unit> {
        s.architecture()
            .graph()
            .vertices_in(flexplore_hgraph::Scope::Top)
            .map(Unit::Vertex)
            .collect()
    }

    #[test]
    fn fresh_estimator_matches_full_estimate_on_every_subset() {
        let s = spec();
        let compiled = CompiledSpec::new(&s);
        let units = units_of(&s);
        let masks = compiled.unit_masks(&units);
        let index = DeltaIndex::new(&compiled, &masks);
        for bits in 0u64..(1 << units.len()) {
            let mask = UnitMask::from_words([bits, 0, 0, 0]);
            let mut tracker = DeltaEstimator::new(&index);
            tracker.push_mask(mask);
            let full = estimate_with_unit_masks(&compiled, &masks, mask);
            assert_eq!(tracker.feasible(), full.feasible, "mask {mask}");
            assert_eq!(tracker.materialize(), full, "mask {mask}");
        }
    }

    #[test]
    fn push_pop_walk_stays_in_sync_with_recompute() {
        let s = spec();
        let compiled = CompiledSpec::new(&s);
        let units = units_of(&s);
        let masks = compiled.unit_masks(&units);
        let index = DeltaIndex::new(&compiled, &masks);
        let mut tracker = DeltaEstimator::new(&index);
        let mut mask = UnitMask::empty();
        // Deterministic pseudo-random push/pop walk.
        let mut lcg = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..200 {
            lcg = lcg.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let k = (lcg >> 33) as usize % units.len();
            if mask.test(k) {
                tracker.pop_unit(k);
                mask.clear(k);
            } else {
                tracker.push_unit(k);
                mask.set(k);
            }
            let full = estimate_with_unit_masks(&compiled, &masks, mask);
            assert_eq!(tracker.feasible(), full.feasible, "mask {mask}");
            assert_eq!(tracker.materialize(), full, "mask {mask}");
        }
        assert!(tracker.pushes() > 0);
    }

    #[test]
    fn irrelevant_unit_push_is_a_state_noop() {
        let s = spec();
        let compiled = CompiledSpec::new(&s);
        let units = units_of(&s);
        let masks = compiled.unit_masks(&units);
        // The DSP is no mapping's target.
        let dsp = (0..units.len())
            .find(|&k| !masks.estimate_relevant_mask().test(k))
            .expect("fixture has an irrelevant unit");
        let index = DeltaIndex::new(&compiled, &masks);
        let mut tracker = DeltaEstimator::new(&index);
        tracker.push_mask(masks.estimate_relevant_mask());
        let before = tracker.materialize();
        let feasible_before = tracker.feasible();
        tracker.push_unit(dsp);
        assert_eq!(tracker.feasible(), feasible_before);
        assert_eq!(tracker.materialize(), before);
        tracker.pop_unit(dsp);
        assert_eq!(tracker.materialize(), before);
    }
}
