//! Marginal flexibility analysis: what each cluster contributes.
//!
//! Definition 4 aggregates the whole hierarchy into one number; designers
//! also want the breakdown — *"how much flexibility do we lose if we stop
//! supporting decryption 3?"*. [`flexibility_profile`] answers that by
//! recomputing the metric with each cluster individually deactivated.

use crate::metric::{flexibility, Flexibility};
use flexplore_hgraph::{ClusterId, HierarchicalGraph};
use serde::{Deserialize, Serialize};

/// Marginal contribution of one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterContribution {
    /// The cluster being dropped.
    pub cluster: ClusterId,
    /// Flexibility with the cluster deactivated (everything else active).
    pub without: Flexibility,
    /// Marginal loss: `f_total − without`.
    pub loss: Flexibility,
}

/// Computes the total flexibility plus the marginal loss of dropping each
/// cluster individually, sorted by decreasing loss (most critical first,
/// ties by cluster id).
///
/// Leaf alternatives typically cost 1; clusters that are the *last*
/// alternative of an interface cost their whole enclosing application
/// (dropping them makes the parent unexecutable).
///
/// # Examples
///
/// ```
/// use flexplore_flex::{flexibility_profile, max_flexibility};
/// use flexplore_hgraph::{HierarchicalGraph, Scope};
///
/// let mut g: HierarchicalGraph<(), ()> = HierarchicalGraph::new("g");
/// let i = g.add_interface(Scope::Top, "I");
/// let only = g.add_cluster(i, "only");        // sole alternative
/// let j = g.add_interface(Scope::Top, "J");
/// let j1 = g.add_cluster(j, "j1");
/// let j2 = g.add_cluster(j, "j2");            // redundant alternatives
///
/// let (total, profile) = flexibility_profile(&g);
/// assert_eq!(total, max_flexibility(&g));
/// // Dropping the sole alternative of I kills the system: loss = total.
/// let only_entry = profile.iter().find(|c| c.cluster == only).unwrap();
/// assert_eq!(only_entry.loss, total);
/// // Dropping one of two J alternatives costs exactly 1.
/// let j1_entry = profile.iter().find(|c| c.cluster == j1).unwrap();
/// assert_eq!(j1_entry.loss, 1);
/// # let _ = (j2,);
/// ```
pub fn flexibility_profile<N, E>(
    graph: &HierarchicalGraph<N, E>,
) -> (Flexibility, Vec<ClusterContribution>) {
    let total = flexibility(graph, |_| true);
    let mut profile: Vec<ClusterContribution> = graph
        .cluster_ids()
        .map(|dropped| {
            let without = flexibility(graph, |c| c != dropped);
            ClusterContribution {
                cluster: dropped,
                without,
                loss: total.saturating_sub(without),
            }
        })
        .collect();
    profile.sort_by_key(|c| (std::cmp::Reverse(c.loss), c.cluster));
    (total, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_hgraph::Scope;

    /// The Fig. 3 structure: γ_I (leaf), γ_G (3 games), γ_D (3 × 2).
    fn fig3() -> HierarchicalGraph<(), ()> {
        let mut g = HierarchicalGraph::new("fig3");
        let app = g.add_interface(Scope::Top, "I_app");
        let _gi = g.add_cluster(app, "gamma_I");
        let gg = g.add_cluster(app, "gamma_G");
        let ig = g.add_interface(gg.into(), "I_G");
        for k in 1..=3 {
            g.add_cluster(ig, format!("gamma_G{k}"));
        }
        let gd = g.add_cluster(app, "gamma_D");
        let id = g.add_interface(gd.into(), "I_D");
        for k in 1..=3 {
            g.add_cluster(id, format!("gamma_D{k}"));
        }
        let iu = g.add_interface(gd.into(), "I_U");
        for k in 1..=2 {
            g.add_cluster(iu, format!("gamma_U{k}"));
        }
        g
    }

    #[test]
    fn fig3_profile_losses() {
        let g = fig3();
        let (total, profile) = flexibility_profile(&g);
        assert_eq!(total, 8);
        assert_eq!(profile.len(), g.cluster_count());
        let loss_of = |name: &str| {
            profile
                .iter()
                .find(|c| g.cluster_name(c.cluster) == name)
                .unwrap()
                .loss
        };
        // Redundant leaf alternatives cost 1.
        for name in ["gamma_G1", "gamma_D2", "gamma_U2"] {
            assert_eq!(loss_of(name), 1, "{name}");
        }
        // Whole applications cost their subtree flexibility.
        assert_eq!(loss_of("gamma_G"), 3);
        assert_eq!(loss_of("gamma_D"), 4);
        assert_eq!(loss_of("gamma_I"), 1);
        // The profile is sorted by decreasing loss.
        for w in profile.windows(2) {
            assert!(w[0].loss >= w[1].loss);
        }
    }

    #[test]
    fn losses_are_consistent_with_without() {
        let g = fig3();
        let (total, profile) = flexibility_profile(&g);
        for c in &profile {
            assert_eq!(c.without + c.loss, total);
        }
    }

    #[test]
    fn flat_graph_profile_is_empty() {
        let mut g: HierarchicalGraph<(), ()> = HierarchicalGraph::new("flat");
        g.add_vertex(Scope::Top, "v", ());
        let (total, profile) = flexibility_profile(&g);
        assert_eq!(total, 1);
        assert!(profile.is_empty());
    }
}
