//! Flexibility estimation for reduced specifications.
//!
//! EXPLORE (Section 4 of the paper) visits candidate resource allocations
//! in cost order and, before invoking the NP-complete binding solver,
//! *estimates* the maximal flexibility implementable on the candidate:
//! remove all unallocated resources (and with them their mapping edges),
//! drop problem vertices left without mapping edges, and evaluate
//! Definition 4 on what remains. The estimate **ignores** communication
//! routing and timing constraints, so it is an upper bound on the
//! implementable flexibility — exactly what makes skipping candidates with
//! `estimate ≤ f_cur` a sound pruning rule.

use crate::metric::{flexibility, Flexibility};
use flexplore_hgraph::{ClusterId, InterfaceId, Scope, VertexId};
use flexplore_spec::{CompiledSpec, ResourceAllocation, SpecificationGraph, UnitMask, UnitMasks};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Result of estimating the flexibility implementable on a resource
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlexibilityEstimate {
    /// `true` if the allocation supports at least one complete problem
    /// activation (all top-level processes bindable, every top-level
    /// interface with at least one activatable cluster) — the paper's
    /// "possible resource allocation" criterion.
    pub feasible: bool,
    /// Upper bound on the implementable flexibility (0 when infeasible).
    pub value: Flexibility,
    /// The problem clusters that are potentially activatable: every process
    /// directly inside is bindable and every nested interface retains an
    /// activatable alternative.
    pub activatable: BTreeSet<ClusterId>,
}

/// Estimates the maximal flexibility implementable under `allocation`.
///
/// A process is *bindable* if one of its mapping edges targets an available
/// resource; a cluster is *activatable* if all processes directly inside it
/// are bindable and each of its interfaces keeps at least one activatable
/// cluster (recursively).
///
/// # Examples
///
/// ```
/// use flexplore_flex::estimate_flexibility;
/// use flexplore_spec::{
///     ArchitectureGraph, Cost, ProblemGraph, ResourceAllocation, SpecificationGraph,
/// };
/// use flexplore_hgraph::Scope;
/// use flexplore_sched::Time;
///
/// # fn main() -> Result<(), flexplore_spec::SpecError> {
/// let mut p = ProblemGraph::new("p");
/// let i = p.add_interface(Scope::Top, "I");
/// let c1 = p.add_cluster(i, "c1");
/// let v1 = p.add_process(c1.into(), "v1");
/// let c2 = p.add_cluster(i, "c2");
/// let v2 = p.add_process(c2.into(), "v2");
///
/// let mut a = ArchitectureGraph::new("a");
/// let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(100));
/// let asic = a.add_resource(Scope::Top, "asic", Cost::new(200));
///
/// let mut spec = SpecificationGraph::new("s", p, a);
/// spec.add_mapping(v1, cpu, Time::from_ns(10))?;
/// spec.add_mapping(v2, asic, Time::from_ns(5))?; // v2 needs the ASIC
///
/// // CPU only: just c1 activatable -> estimate 1.
/// let est = estimate_flexibility(&spec, &ResourceAllocation::new().with_vertex(cpu));
/// assert!(est.feasible);
/// assert_eq!(est.value, 1);
///
/// // CPU + ASIC: both alternatives -> estimate 2.
/// let est = estimate_flexibility(
///     &spec,
///     &ResourceAllocation::new().with_vertex(cpu).with_vertex(asic),
/// );
/// assert_eq!(est.value, 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn estimate_flexibility(
    spec: &SpecificationGraph,
    allocation: &ResourceAllocation,
) -> FlexibilityEstimate {
    let available = allocation.available_vertices(spec.architecture());
    estimate_with_available(spec, &available)
}

/// Variant of [`estimate_flexibility`] taking the available-vertex set
/// directly (avoids recomputing it in tight exploration loops).
#[must_use]
pub fn estimate_with_available(
    spec: &SpecificationGraph,
    available: &BTreeSet<VertexId>,
) -> FlexibilityEstimate {
    let graph = spec.problem().graph();
    let bindable = |v: VertexId| -> bool { !spec.reachable_resources(v).is_disjoint(available) };
    estimate_with_bindable(graph, &bindable)
}

/// Variant of [`estimate_with_available`] answering bindability from the
/// precompiled reachable-resource tables of a [`CompiledSpec`] — no
/// per-process `BTreeSet` construction in the hot loop. Produces the same
/// estimate as [`estimate_with_available`] on the compiled specification.
#[must_use]
pub fn estimate_with_compiled(
    compiled: &CompiledSpec<'_>,
    available: &BTreeSet<VertexId>,
) -> FlexibilityEstimate {
    let graph = compiled.spec().problem().graph();
    let bindable = |v: VertexId| -> bool {
        compiled
            .reachable_resources(v)
            .iter()
            .any(|r| available.contains(r))
    };
    estimate_with_bindable(graph, &bindable)
}

/// Variant of [`estimate_with_compiled`] over a bitmask-compiled
/// allocation: a process is bindable iff its coverage mask intersects the
/// allocated unit mask. Produces the same estimate as
/// [`estimate_with_compiled`] on the expanded available-vertex set of the
/// same unit subset — the lattice search relies on this to reproduce the
/// flat scan's candidates bit for bit.
///
/// Only the bits of [`UnitMasks::estimate_relevant_mask`] influence the
/// result, so callers may memoize on `allocated & estimate_relevant_mask()`.
#[must_use]
pub fn estimate_with_unit_masks(
    compiled: &CompiledSpec<'_>,
    masks: &UnitMasks,
    allocated: UnitMask,
) -> FlexibilityEstimate {
    let graph = compiled.spec().problem().graph();
    let bindable = |v: VertexId| -> bool { masks.coverage(v).intersects(allocated) };
    estimate_with_bindable(graph, &bindable)
}

pub(crate) fn estimate_with_bindable<NB: Fn(VertexId) -> bool, N, E>(
    graph: &flexplore_hgraph::HierarchicalGraph<N, E>,
    bindable: &NB,
) -> FlexibilityEstimate {
    let mut activatable: BTreeSet<ClusterId> = BTreeSet::new();
    // Process clusters bottom-up: a cluster can only be judged once its
    // nested interfaces' clusters are judged. Cluster ids are created
    // outer-first in builders, but nesting is arbitrary — recurse instead.
    fn cluster_ok<NB: Fn(VertexId) -> bool, N, E>(
        graph: &flexplore_hgraph::HierarchicalGraph<N, E>,
        bindable: &NB,
        activatable: &mut BTreeSet<ClusterId>,
        cluster: ClusterId,
    ) -> bool {
        let scope = Scope::Cluster(cluster);
        if !graph.vertices_in(scope).all(bindable) {
            return false;
        }
        let interfaces: Vec<InterfaceId> = graph.interfaces_in(scope).collect();
        for i in interfaces {
            let mut any = false;
            let clusters: Vec<ClusterId> = graph.clusters_of(i).to_vec();
            for c in clusters {
                if cluster_ok(graph, bindable, activatable, c) {
                    activatable.insert(c);
                    any = true;
                }
            }
            if !any {
                return false;
            }
        }
        true
    }

    // Rule 4: all top-level processes and interfaces must be activatable.
    let mut feasible = graph.vertices_in(Scope::Top).all(bindable);
    let top_interfaces: Vec<InterfaceId> = graph.interfaces_in(Scope::Top).collect();
    for i in top_interfaces {
        let mut any = false;
        let clusters: Vec<ClusterId> = graph.clusters_of(i).to_vec();
        for c in clusters {
            if cluster_ok(graph, bindable, &mut activatable, c) {
                activatable.insert(c);
                any = true;
            }
        }
        feasible &= any;
    }
    let value = if feasible {
        flexibility(graph, |c| activatable.contains(&c))
    } else {
        0
    };
    FlexibilityEstimate {
        feasible,
        value,
        activatable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexplore_sched::Time;
    use flexplore_spec::{ArchitectureGraph, Cost, ProblemGraph};

    /// Problem: top process P plus interface I {c1: v1, c2: v2, c3: {inner
    /// interface J {j1: w1, j2: w2}}}. Architecture: cpu (maps P, v1, w1),
    /// asic (v2, w2).
    fn spec() -> (
        SpecificationGraph,
        VertexId,
        VertexId,
        std::collections::BTreeMap<&'static str, ClusterId>,
    ) {
        let mut p = ProblemGraph::new("p");
        let top = p.add_process(Scope::Top, "P");
        let i = p.add_interface(Scope::Top, "I");
        let c1 = p.add_cluster(i, "c1");
        let v1 = p.add_process(c1.into(), "v1");
        let c2 = p.add_cluster(i, "c2");
        let v2 = p.add_process(c2.into(), "v2");
        let c3 = p.add_cluster(i, "c3");
        let j = p.add_interface(c3.into(), "J");
        let j1 = p.add_cluster(j, "j1");
        let w1 = p.add_process(j1.into(), "w1");
        let j2 = p.add_cluster(j, "j2");
        let w2 = p.add_process(j2.into(), "w2");

        let mut a = ArchitectureGraph::new("a");
        let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(100));
        let asic = a.add_resource(Scope::Top, "asic", Cost::new(200));

        let mut s = SpecificationGraph::new("s", p, a);
        s.add_mapping(top, cpu, Time::from_ns(1)).unwrap();
        s.add_mapping(v1, cpu, Time::from_ns(1)).unwrap();
        s.add_mapping(v2, asic, Time::from_ns(1)).unwrap();
        s.add_mapping(w1, cpu, Time::from_ns(1)).unwrap();
        s.add_mapping(w2, asic, Time::from_ns(1)).unwrap();
        let names = std::collections::BTreeMap::from([
            ("c1", c1),
            ("c2", c2),
            ("c3", c3),
            ("j1", j1),
            ("j2", j2),
        ]);
        (s, cpu, asic, names)
    }

    #[test]
    fn cpu_only_supports_c1_and_c3j1() {
        let (s, cpu, _, names) = spec();
        let est = estimate_flexibility(&s, &ResourceAllocation::new().with_vertex(cpu));
        assert!(est.feasible);
        // c1 (1) + c3{j1} (1) = 2.
        assert_eq!(est.value, 2);
        assert!(est.activatable.contains(&names["c1"]));
        assert!(est.activatable.contains(&names["c3"]));
        assert!(est.activatable.contains(&names["j1"]));
        assert!(!est.activatable.contains(&names["c2"]));
        assert!(!est.activatable.contains(&names["j2"]));
    }

    #[test]
    fn both_resources_support_everything() {
        let (s, cpu, asic, _) = spec();
        let alloc = ResourceAllocation::new().with_vertex(cpu).with_vertex(asic);
        let est = estimate_flexibility(&s, &alloc);
        assert!(est.feasible);
        // c1 + c2 + c3{j1+j2} = 1 + 1 + 2 = 4.
        assert_eq!(est.value, 4);
        assert_eq!(est.activatable.len(), 5);
    }

    #[test]
    fn asic_only_is_infeasible_because_top_process_unbindable() {
        let (s, _, asic, _) = spec();
        let est = estimate_flexibility(&s, &ResourceAllocation::new().with_vertex(asic));
        assert!(!est.feasible);
        assert_eq!(est.value, 0);
    }

    #[test]
    fn empty_allocation_is_infeasible() {
        let (s, _, _, _) = spec();
        let est = estimate_flexibility(&s, &ResourceAllocation::new());
        assert!(!est.feasible);
    }

    #[test]
    fn estimate_is_monotone_in_allocation() {
        let (s, cpu, asic, _) = spec();
        let small = estimate_flexibility(&s, &ResourceAllocation::new().with_vertex(cpu));
        let big = estimate_flexibility(
            &s,
            &ResourceAllocation::new().with_vertex(cpu).with_vertex(asic),
        );
        assert!(big.value >= small.value);
        assert!(small.activatable.is_subset(&big.activatable));
    }

    #[test]
    fn estimate_with_available_matches_allocation_path() {
        let (s, cpu, asic, _) = spec();
        let alloc = ResourceAllocation::new().with_vertex(cpu).with_vertex(asic);
        let a = estimate_flexibility(&s, &alloc);
        let b = estimate_with_available(&s, &alloc.available_vertices(s.architecture()));
        assert_eq!(a, b);
    }

    #[test]
    fn unit_mask_estimate_matches_compiled_on_every_subset() {
        let (s, cpu, asic, _) = spec();
        let compiled = CompiledSpec::new(&s);
        let units = vec![
            flexplore_spec::Unit::Vertex(cpu),
            flexplore_spec::Unit::Vertex(asic),
        ];
        let masks = compiled.unit_masks(&units);
        for bits in 0u64..4 {
            let mut available = BTreeSet::new();
            let mut mask = UnitMask::empty();
            if bits & 0b01 != 0 {
                available.insert(cpu);
                mask.set(0);
            }
            if bits & 0b10 != 0 {
                available.insert(asic);
                mask.set(1);
            }
            assert_eq!(
                estimate_with_unit_masks(&compiled, &masks, mask),
                estimate_with_compiled(&compiled, &available),
                "unit-mask estimate must agree with the set-based one"
            );
        }
    }

    #[test]
    fn compiled_estimate_matches_uncompiled_on_every_sub_allocation() {
        let (s, cpu, asic, _) = spec();
        let compiled = CompiledSpec::new(&s);
        for alloc in [
            ResourceAllocation::new(),
            ResourceAllocation::new().with_vertex(cpu),
            ResourceAllocation::new().with_vertex(asic),
            ResourceAllocation::new().with_vertex(cpu).with_vertex(asic),
        ] {
            let available = alloc.available_vertices(s.architecture());
            assert_eq!(
                estimate_with_compiled(&compiled, &available),
                estimate_with_available(&s, &available)
            );
        }
    }
}
