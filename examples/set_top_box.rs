//! The paper's Section 5 case study, end to end: build the Set-Top box
//! specification (Fig. 3 + Fig. 5 + Table 1), run the EXPLORE algorithm,
//! and print
//!
//! * the Pareto table of Section 5 (resources, clusters, cost,
//!   flexibility),
//! * the Fig. 4 trade-off curve in `(cost, 1/f)` coordinates, and
//! * the search-space reduction statistics the paper reports.
//!
//! Run with:
//!
//! ```text
//! cargo run --example set_top_box
//! ```
//!
//! Pass `--dot` to also print the problem graph in Graphviz format.

use flexplore::hgraph::DotOptions;
use flexplore::{explore, paper_pareto_table, set_top_box, ExploreOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stb = set_top_box();
    let spec = &stb.spec;

    if std::env::args().any(|a| a == "--dot") {
        println!("{}", spec.problem().graph().to_dot(&DotOptions::default()));
        return Ok(());
    }

    println!("Set-Top box case study (Haubelt et al., DATE 2002, Section 5)");
    println!(
        "  problem graph: {} processes, {} interfaces, {} clusters",
        spec.problem().graph().vertex_count(),
        spec.problem().graph().interface_count(),
        spec.problem().graph().cluster_count(),
    );
    println!(
        "  architecture: {} resources, {} FPGA designs, {} mapping edges",
        spec.architecture().graph().vertex_count(),
        stb.designs.len(),
        spec.mapping_count(),
    );

    let started = std::time::Instant::now();
    let result = explore(spec, &ExploreOptions::paper())?;
    let elapsed = started.elapsed();

    println!("\nPareto-optimal solutions (paper's Section 5 table):");
    println!(
        "  {:<28} {:<42} {:>6} {:>3}",
        "Resources", "Clusters", "c", "f"
    );
    for point in &result.front {
        let implementation = point
            .implementation
            .as_ref()
            .expect("explore retains impls");
        let resources = implementation.allocation.display_names(spec.architecture());
        let mut clusters: Vec<&str> = implementation
            .covered_clusters
            .iter()
            .map(|&c| spec.problem().graph().cluster_name(c))
            .filter(|n| !n.ends_with("_I") || *n == "gamma_I") // keep all, cosmetic
            .collect();
        clusters.sort_unstable();
        println!(
            "  {:<28} {:<42} {:>6} {:>3}",
            resources,
            clusters.join(","),
            point.cost.to_string(),
            point.flexibility
        );
    }

    println!("\nreference (published table):");
    for (resources, cost, flexibility) in paper_pareto_table() {
        println!("  {:<28} ${cost:<5} f={flexibility}", resources.join(", "));
    }

    println!("\nFig. 4 trade-off curve (cost vs 1/flexibility):");
    for point in &result.front {
        println!(
            "  cost {:>4}   1/f = {:.3}",
            point.cost.dollars(),
            point.reciprocal_flexibility()
        );
    }

    let stats = &result.stats;
    println!("\nsearch-space reduction (paper: 2^25 -> ~7000 -> ~1050 -> 6):");
    println!("  raw design points     : 2^{}", stats.vertex_set_size);
    println!("  unit subsets scanned  : {}", stats.allocations.subsets);
    println!(
        "  structurally pruned   : {}",
        stats.allocations.pruned_structurally
    );
    println!("  infeasible (estimate) : {}", stats.allocations.infeasible);
    println!("  possible allocations  : {}", stats.allocations.kept);
    println!("  estimate-skipped      : {}", stats.estimate_skipped);
    println!("  binding attempts      : {}", stats.implement_attempts);
    println!("  Pareto-optimal points : {}", stats.pareto_points);
    println!("  wall-clock            : {elapsed:.2?}");

    // Show the paper's coverage example: the modes realizing the $290
    // point and the FPGA configuration each holds.
    if let Some(point) = result.front.iter().find(|p| p.cost.dollars() == 290) {
        let implementation = point.implementation.as_ref().expect("retained");
        println!("\nmode coverage of the $290 design point:");
        for mode in implementation.covering_modes() {
            let clusters: Vec<&str> = mode
                .mode
                .problem
                .iter()
                .map(|(_, c)| spec.problem().graph().cluster_name(c))
                .collect();
            let config: Vec<String> = mode
                .mode
                .architecture
                .iter()
                .map(|(i, c)| {
                    format!(
                        "{}={}",
                        spec.architecture().graph().interface_name(i),
                        spec.architecture().graph().cluster_name(c)
                    )
                })
                .collect();
            println!(
                "  {{{}}} with {}",
                clusters.join(" "),
                if config.is_empty() {
                    "no reconfigurable device".to_owned()
                } else {
                    config.join(", ")
                }
            );
        }
    }
    Ok(())
}
