//! Graceful degradation: the Set-Top box loses its FPGA design mid-stream.
//!
//! The paper sells flexibility as headroom for *planned* change — zapping
//! channels, starting a game. This example shows the same headroom
//! absorbing *unplanned* change. On the $290 platform
//! (µP2 + C1 + FPGA designs D3/U2/G1) the user watches a TV station whose
//! decryption runs on the FPGA design D3; then:
//!
//! 1. the loaded design suffers a permanent fault mid-stream — the manager
//!    re-resolves the behavior to the software decoder D1 on µP2, and the
//!    picture stays up (a *degraded switch*: flexibility spent as
//!    redundancy);
//! 2. the processor itself dies — nothing survives that, the behavior is
//!    lost (best-effort policy: later requests on healthy resources would
//!    still be served);
//! 3. the same scenario is replayed through the deterministic scenario
//!    runner, reporting how much flexibility the platform still implements
//!    with its dead resources masked out;
//! 4. the k-resilient exploration ranks the paper's platforms by the
//!    flexibility they can *guarantee* under one resource failure — the
//!    third objective money can buy.
//!
//! Run with:
//!
//! ```text
//! cargo run --example fault_demo
//! ```

use flexplore::adaptive::{DegradeOutcome, FaultTimelineEvent};
use flexplore::{
    explore_resilient, implement_default, run_with_faults, set_top_box, AdaptiveSystem,
    DegradationPolicy, ExploreOptions, FaultKind, FaultPlan, FaultScenario, ReconfigCost,
    ResourceAllocation, Selection, Time,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stb = set_top_box();
    let spec = &stb.spec;

    // The $290 design point: µP2, C1, and all three FPGA designs.
    let allocation = ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("C1"))
        .with_cluster(stb.design("D3"))
        .with_cluster(stb.design("U2"))
        .with_cluster(stb.design("G1"));
    let implementation =
        implement_default(spec, &allocation).expect("the $290 platform is feasible");
    println!(
        "platform [{}] cost {} flexibility {}",
        allocation.display_names(spec.architecture()),
        implementation.cost,
        implementation.flexibility
    );

    let watch_tv_d3 = Selection::new()
        .with(stb.interfaces["I_app"], stb.cluster("gamma_D"))
        .with(stb.interfaces["I_D"], stb.cluster("gamma_D3"))
        .with(stb.interfaces["I_U"], stb.cluster("gamma_U1"));

    // --- 1. The loaded FPGA design dies under the running stream. -------
    let mut system = AdaptiveSystem::new(
        spec,
        &implementation,
        ReconfigCost::Uniform(Time::from_ns(1_000)),
    );
    system.switch_to(&watch_tv_d3)?;
    println!("\nwatching TV via FPGA design D3 ...");
    let outcome = system.fail_resource(
        Time::from_ns(10_000),
        stb.resource("D3"),
        FaultKind::Permanent,
    )?;
    assert_eq!(outcome, DegradeOutcome::Degraded);
    for event in system.fault_timeline() {
        describe(&stb, event);
    }

    // --- 2. Then the processor itself dies: nothing survives that. ------
    let outcome = system.fail_resource(
        Time::from_ns(20_000),
        stb.resource("uP2"),
        FaultKind::Permanent,
    )?;
    assert!(matches!(outcome, DegradeOutcome::Lost { .. }));
    describe(&stb, system.fault_timeline().last().expect("recorded"));

    // --- 3. The same story through the deterministic scenario runner. ---
    let trace = vec![watch_tv_d3.clone(), watch_tv_d3.clone()];
    let scenario = FaultScenario {
        plan: FaultPlan::new().with_fault(
            Time::from_ns(500),
            stb.resource("D3"),
            FaultKind::Permanent,
        ),
        policy: DegradationPolicy::BestEffort,
        dwell: Time::from_ns(1_000),
    };
    let report = run_with_faults(
        spec,
        &implementation,
        ReconfigCost::Uniform(Time::from_ns(1_000)),
        &trace,
        &scenario,
    )?;
    println!(
        "\nscenario replay: {} served, {} degraded switches, {} lost",
        report.stats.switches, report.stats.degraded_switches, report.stats.behaviors_lost
    );
    println!(
        "flexibility: {} fault-free, {} with D3 dead",
        report.baseline_flexibility, report.surviving_flexibility
    );

    // --- 4. What does one guaranteed failure cost? ----------------------
    println!("\ncost / flexibility / 1-resilient flexibility front:");
    for point in explore_resilient(spec, 1, &ExploreOptions::paper())? {
        println!(
            "  {:>8}  f={:<3} guaranteed f={:<3} [{}]",
            point.cost.to_string(),
            point.flexibility,
            point.resilience,
            point
                .implementation
                .allocation
                .display_names(spec.architecture())
        );
    }
    Ok(())
}

fn describe(stb: &flexplore::SetTopBox, event: &FaultTimelineEvent) {
    let arch = stb.spec.architecture();
    let g = stb.spec.problem().graph();
    let names = |s: &Selection| -> String {
        s.iter()
            .map(|(_, c)| g.cluster_name(c).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    };
    match event {
        FaultTimelineEvent::ResourceFailed {
            at,
            resource,
            permanent,
        } => println!(
            "  {at:>8}  FAIL    {} ({})",
            arch.resource_name(*resource),
            if *permanent { "permanent" } else { "transient" }
        ),
        FaultTimelineEvent::ResourceRecovered { at, resource } => {
            println!("  {at:>8}  RECOVER {}", arch.resource_name(*resource));
        }
        FaultTimelineEvent::DegradedSwitch {
            at,
            behavior,
            mode,
            rebound,
            reconfig_time,
        } => println!(
            "  {at:>8}  DEGRADE kept [{}] via [{}] ({}, reconfig {reconfig_time})",
            names(behavior),
            names(mode),
            if *rebound {
                "rebound"
            } else {
                "surviving mode"
            }
        ),
        FaultTimelineEvent::BehaviorLost { at, behavior } => {
            println!("  {at:>8}  LOST    [{}]", names(behavior));
        }
    }
}
