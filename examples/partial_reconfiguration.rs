//! Partial reconfiguration: a dual-slot FPGA priced by the explorer.
//!
//! The paper's architecture model places no limit on the number of
//! reconfigurable regions — each is an interface with its own design
//! library. This example prices a two-slot FPGA for a filter→compress
//! pipeline whose all-CPU variant violates the 69 % utilization limit:
//! one slot buys a working product, the second slot buys the remaining
//! flexibility (both accelerators resident at once).
//!
//! Run with:
//!
//! ```text
//! cargo run --example partial_reconfiguration
//! ```

use flexplore::bind::{solve_mode, BindOptions, CommGraph};
use flexplore::models::dual_slot_fpga;
use flexplore::{explore, ExploreOptions, ResourceAllocation, Selection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = dual_slot_fpga();
    let spec = &model.spec;

    println!("dual-slot FPGA pipeline (filter -> compress, 200 ns period)");
    println!(
        "  CPU-only stage costs 80+80 ns: utilization 0.8 > 0.69 -> the all-CPU\n  \
         variant is infeasible; accelerators are mandatory.\n"
    );

    let result = explore(spec, &ExploreOptions::paper())?;
    println!("Pareto front:");
    for point in &result.front {
        println!(
            "  {:>6}  f={}  [{}]",
            point.cost.to_string(),
            point.flexibility,
            point
                .implementation
                .as_ref()
                .map(|i| i.allocation.display_names(spec.architecture()))
                .unwrap_or_default()
        );
    }

    // Show the fully-accelerated mode with BOTH slots resident at once.
    let allocation = ResourceAllocation::new()
        .with_vertex(model.resources["CPU"])
        .with_vertex(model.resources["BUS"])
        .with_cluster(model.designs["FA"])
        .with_cluster(model.designs["CA"]);
    let available = allocation.available_vertices(spec.architecture());
    let comm = CommGraph::new(spec.architecture(), &available);
    let eca = Selection::new()
        .with(model.interfaces["I_filter"], model.clusters["filter_acc"])
        .with(
            model.interfaces["I_compress"],
            model.clusters["compress_acc"],
        );
    let (mode, _) = solve_mode(spec, &allocation, &comm, &eca, &BindOptions::default());
    let mode = mode.expect("doubly-accelerated mode is feasible");

    println!("\ndoubly-accelerated mode (both slots resident simultaneously):");
    for (process, mapping) in mode.binding.iter() {
        let m = spec.mapping(mapping);
        println!(
            "  {:<16} -> {:<4} ({})",
            spec.problem().process_name(process),
            spec.architecture().resource_name(m.resource),
            m.latency
        );
    }
    println!("slot configurations in this mode:");
    for (device, cluster) in mode.mode.architecture.iter() {
        println!(
            "  {} holds {}",
            spec.architecture().graph().interface_name(device),
            spec.architecture().graph().cluster_name(cluster)
        );
    }
    Ok(())
}
