//! Quickstart: model a tiny flexible system from scratch and explore its
//! flexibility/cost trade-off.
//!
//! A video pipeline has one stage with two alternative codecs. Codec `c1`
//! runs on the CPU; codec `c2` only fits the ASIC. The exploration finds
//! two Pareto-optimal platforms: CPU-only (cheap, one codec) and CPU+ASIC
//! (more expensive, both codecs — a more *flexible* product).
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use flexplore::{
    explore, ArchitectureGraph, Cost, ExploreOptions, ProblemGraph, Scope, SpecificationGraph, Time,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Behavior: a source feeding a codec stage with two alternatives.
    // ------------------------------------------------------------------
    let mut problem = ProblemGraph::new("pipeline");
    let source = problem.add_process(Scope::Top, "source");
    let stage = problem.add_interface(Scope::Top, "I_codec");
    let input = stage_input(&mut problem, stage);

    let c1 = problem.add_cluster(stage, "codec_v1");
    let v1 = problem.add_process(c1.into(), "decode_v1");
    problem.map_port(c1, input, flexplore::PortTarget::vertex(v1))?;

    let c2 = problem.add_cluster(stage, "codec_v2");
    let v2 = problem.add_process(c2.into(), "decode_v2");
    problem.map_port(c2, input, flexplore::PortTarget::vertex(v2))?;

    problem.add_dependence(source, (stage, input))?;

    // ------------------------------------------------------------------
    // 2. Platform: a CPU and an optional ASIC joined by a bus.
    // ------------------------------------------------------------------
    let mut arch = ArchitectureGraph::new("platform");
    let cpu = arch.add_resource(Scope::Top, "CPU", Cost::new(100));
    let asic = arch.add_resource(Scope::Top, "ASIC", Cost::new(180));
    let bus = arch.add_bus(Scope::Top, "BUS", Cost::new(10));
    arch.connect(cpu, bus)?;
    arch.connect(bus, asic)?;

    // ------------------------------------------------------------------
    // 3. Mapping edges: who can run where, and how fast.
    // ------------------------------------------------------------------
    let mut spec = SpecificationGraph::new("quickstart", problem, arch);
    spec.add_mapping(source, cpu, Time::from_ns(10))?;
    spec.add_mapping(v1, cpu, Time::from_ns(40))?;
    spec.add_mapping(v2, asic, Time::from_ns(15))?; // v2 is ASIC-only

    // ------------------------------------------------------------------
    // 4. Explore the flexibility/cost design space.
    // ------------------------------------------------------------------
    let result = explore(&spec, &ExploreOptions::paper())?;

    println!("flexibility/cost Pareto front:");
    for point in &result.front {
        let resources = point
            .implementation
            .as_ref()
            .map(|i| i.allocation.display_names(spec.architecture()))
            .unwrap_or_default();
        println!(
            "  cost {:>5}   flexibility {}   resources [{resources}]",
            point.cost.to_string(),
            point.flexibility
        );
    }
    println!(
        "\nsearch: {} subsets -> {} possible allocations -> {} binding attempts -> {} Pareto points",
        result.stats.allocations.subsets,
        result.stats.allocations.kept,
        result.stats.implement_attempts,
        result.stats.pareto_points,
    );
    Ok(())
}

/// Declares the single input port of a codec stage.
fn stage_input(
    problem: &mut ProblemGraph,
    stage: flexplore::InterfaceId,
) -> flexplore::hgraph::PortId {
    problem.add_port(stage, "in", flexplore::PortDirection::In)
}
