//! Adaptive operation: time-variant cluster selection on one platform.
//!
//! The paper's hierarchical activation is *timed* — a system may switch
//! behaviors (and FPGA configurations) during operation. This example takes
//! the $290 Pareto point of the Set-Top box case study
//! (µP2 + FPGA designs D3/G1/U2 + bus C1) and simulates a usage timeline:
//!
//! 1. the user watches a TV station encrypted with algorithm 1,
//! 2. zaps to a station needing decryption 3 (FPGA reconfigures to D3),
//! 3. switches to a station using uncompression 2 (FPGA reconfigures to
//!    U2),
//! 4. starts a game (FPGA reconfigures to G1),
//! 5. opens the Internet browser.
//!
//! For every instant the example resolves a feasible mode on the fixed
//! allocation, prints the binding and the loaded FPGA configuration, and
//! re-verifies it against the declarative feasibility rules.
//!
//! Run with:
//!
//! ```text
//! cargo run --example adaptive_reconfiguration
//! ```

use flexplore::bind::{solve_mode, BindOptions, CommGraph};
use flexplore::{set_top_box, ResourceAllocation, Selection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stb = set_top_box();
    let spec = &stb.spec;

    // The $290 design point: µP2, C1, and all three FPGA designs.
    let allocation = ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("C1"))
        .with_cluster(stb.design("D3"))
        .with_cluster(stb.design("U2"))
        .with_cluster(stb.design("G1"));
    println!(
        "platform: [{}] (cost {})",
        allocation.display_names(spec.architecture()),
        allocation.cost(spec.architecture())
    );

    let app = stb.interfaces["I_app"];
    let i_g = stb.interfaces["I_G"];
    let i_d = stb.interfaces["I_D"];
    let i_u = stb.interfaces["I_U"];

    // The usage timeline: (instant, description, problem selection).
    let timeline: Vec<(&str, Selection)> = vec![
        (
            "t0: TV station (decrypt 1, uncompress 1)",
            Selection::new()
                .with(app, stb.cluster("gamma_D"))
                .with(i_d, stb.cluster("gamma_D1"))
                .with(i_u, stb.cluster("gamma_U1")),
        ),
        (
            "t1: zap to station needing decrypt 3",
            Selection::new()
                .with(app, stb.cluster("gamma_D"))
                .with(i_d, stb.cluster("gamma_D3"))
                .with(i_u, stb.cluster("gamma_U1")),
        ),
        (
            "t2: station with uncompression 2",
            Selection::new()
                .with(app, stb.cluster("gamma_D"))
                .with(i_d, stb.cluster("gamma_D1"))
                .with(i_u, stb.cluster("gamma_U2")),
        ),
        (
            "t3: start a game (class 1)",
            Selection::new()
                .with(app, stb.cluster("gamma_G"))
                .with(i_g, stb.cluster("gamma_G1")),
        ),
        (
            "t4: open the Internet browser",
            Selection::new().with(app, stb.cluster("gamma_I")),
        ),
    ];

    let available = allocation.available_vertices(spec.architecture());
    let comm = CommGraph::new(spec.architecture(), &available);
    let options = BindOptions::default();
    let mut previous_config: Option<String> = None;

    for (label, eca) in &timeline {
        let (solved, _) = solve_mode(spec, &allocation, &comm, eca, &options);
        let Some(mode) = solved else {
            println!("{label}\n  -> INFEASIBLE on this platform");
            continue;
        };
        // Which configuration does the FPGA hold in this mode?
        let fpga = spec
            .architecture()
            .graph()
            .interface_by_name(flexplore::Scope::Top, "FPGA")
            .expect("model has an FPGA");
        let config = mode
            .mode
            .architecture
            .get(fpga)
            .map(|c| spec.architecture().graph().cluster_name(c).to_owned());
        let reconfigured = match (&previous_config, &config) {
            (Some(prev), Some(now)) if prev != now => "  [FPGA reconfigured]",
            (None, Some(_)) => "  [FPGA configured]",
            _ => "",
        };
        println!("{label}{reconfigured}");
        for (process, mapping) in mode.binding.iter() {
            let m = spec.mapping(mapping);
            println!(
                "    {:<6} -> {:<4} ({})",
                spec.problem().process_name(process),
                spec.architecture().resource_name(m.resource),
                m.latency
            );
        }
        if let Some(cfg) = &config {
            println!("    FPGA holds {cfg}");
            previous_config = config.clone();
        }
        // Exact static schedule of the mode (the paper's future-work item):
        // one non-preemptive execution per period, critical-path ordered.
        let schedule =
            flexplore::schedule_mode(spec, eca, &mode.binding, flexplore::CommDelay::Zero)?;
        for line in schedule
            .gantt(
                |r| spec.architecture().resource_name(r).to_owned(),
                |p| spec.problem().process_name(p).to_owned(),
            )
            .lines()
        {
            println!("      {line}");
        }
        assert!(schedule.meets_periods(spec), "exact timing holds");
        // Defensive: the declarative rules agree (solver already verified).
        spec.check_binding(&mode.mode, &available, &mode.binding)?;
    }

    // A mode this platform can NOT serve: game class 2 needs an ASIC.
    let impossible = Selection::new()
        .with(app, stb.cluster("gamma_G"))
        .with(i_g, stb.cluster("gamma_G2"));
    let (solved, _) = solve_mode(spec, &allocation, &comm, &impossible, &options);
    println!(
        "\nt5: game class 2 -> {}",
        if solved.is_none() {
            "infeasible (needs an ASIC; buy the $360 platform)"
        } else {
            "feasible?!"
        }
    );
    Ok(())
}
