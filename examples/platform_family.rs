//! Dimensioning a product family with single-point design queries.
//!
//! A platform vendor plans three Set-Top box SKUs: an entry model (any
//! working product), a mid-range model that must support the game console
//! and at least five behaviors, and a flagship that implements the whole
//! behavior family. Instead of computing the full Pareto front, each SKU
//! is answered with a direct query:
//!
//! * *"cheapest platform with flexibility ≥ k"* —
//!   [`min_cost_for_flexibility`],
//! * *"most flexible platform within budget"* —
//!   [`max_flexibility_under_budget`].
//!
//! Run with:
//!
//! ```text
//! cargo run --example platform_family
//! ```

use flexplore::{
    max_flexibility, max_flexibility_under_budget, min_cost_for_flexibility, set_top_box, Cost,
    ExploreOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stb = set_top_box();
    let spec = &stb.spec;
    let options = ExploreOptions::paper();
    let family_max = max_flexibility(spec.problem().graph());
    println!("behavior family: maximal flexibility {family_max}");

    // Entry SKU: the cheapest platform that ships at all.
    let entry = min_cost_for_flexibility(spec, 1, &options)?.expect("some platform works");
    println!(
        "\nentry SKU     : {} at {} (flexibility {})",
        entry
            .implementation
            .as_ref()
            .map(|i| i.allocation.display_names(spec.architecture()))
            .unwrap_or_default(),
        entry.cost,
        entry.flexibility
    );

    // Mid-range SKU: at least 5 behaviors.
    let mid = min_cost_for_flexibility(spec, 5, &options)?.expect("5 is implementable");
    println!(
        "mid-range SKU : {} at {} (flexibility {})",
        mid.implementation
            .as_ref()
            .map(|i| i.allocation.display_names(spec.architecture()))
            .unwrap_or_default(),
        mid.cost,
        mid.flexibility
    );

    // Flagship SKU: the full family.
    let flagship =
        min_cost_for_flexibility(spec, family_max, &options)?.expect("family is implementable");
    println!(
        "flagship SKU  : {} at {} (flexibility {})",
        flagship
            .implementation
            .as_ref()
            .map(|i| i.allocation.display_names(spec.architecture()))
            .unwrap_or_default(),
        flagship.cost,
        flagship.flexibility
    );

    // Procurement asks the inverse question: what do fixed budgets buy?
    println!("\nbudget sweep:");
    for budget in [110u64, 200, 250, 300, 400, 500] {
        match max_flexibility_under_budget(spec, Cost::new(budget), &options)? {
            Some(point) => println!(
                "  ${budget:>4} buys flexibility {} ({} at {})",
                point.flexibility,
                point
                    .implementation
                    .as_ref()
                    .map(|i| i.allocation.display_names(spec.architecture()))
                    .unwrap_or_default(),
                point.cost
            ),
            None => println!("  ${budget:>4} buys nothing feasible"),
        }
    }

    // An impossible ask returns None instead of a wrong answer.
    assert!(min_cost_for_flexibility(spec, family_max + 1, &options)?.is_none());
    println!(
        "\nflexibility {} is not implementable on any platform",
        family_max + 1
    );

    // Year two: the entry SKU (µP2) has shipped; its cost is sunk. Which
    // upgrades keep the deployed board and add flexibility?
    let base = flexplore::ResourceAllocation::new().with_vertex(stb.resource("uP2"));
    let upgrades = flexplore::explore_upgrades(spec, &base, &options)?;
    println!("\nupgrade path from the deployed uP2 board (sunk cost $100):");
    for point in &upgrades.front {
        println!(
            "  +{:>4} -> flexibility {} ({})",
            format!("${}", point.cost.dollars().saturating_sub(100)),
            point.flexibility,
            point
                .implementation
                .as_ref()
                .map(|i| i.allocation.display_names(spec.architecture()))
                .unwrap_or_default()
        );
    }
    Ok(())
}
