//! Scaling study: EXPLORE vs. exhaustive search vs. the evolutionary
//! baseline on synthetic specifications of growing size.
//!
//! Reproduces the shape of the paper's scalability claim: the raw search
//! space grows as `2^{|V_S|}`, the possible-allocation construction plus
//! flexibility-estimation pruning cut the binding-solver invocations down
//! by orders of magnitude, and exploration stays interactive at sizes where
//! exhaustive enumeration is already painful.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use flexplore::{
    exhaustive_explore, explore, moea_explore, synthetic_spec, ExploreOptions, MoeaOptions,
    SyntheticConfig,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>6} {:>10} {:>8} {:>8} {:>9} {:>11} {:>11} {:>9}",
        "size",
        "|V_S|",
        "subsets",
        "possible",
        "attempts",
        "pareto",
        "explore",
        "exhaustive",
        "moea-hv"
    );
    for (label, config) in [
        ("small", SyntheticConfig::small(11)),
        (
            "default",
            SyntheticConfig {
                seed: 11,
                ..SyntheticConfig::default()
            },
        ),
        ("medium", SyntheticConfig::medium(11)),
        ("large", SyntheticConfig::large(11)),
    ] {
        let spec = synthetic_spec(&config);

        let started = Instant::now();
        let fast = explore(&spec, &ExploreOptions::paper())?;
        let explore_time = started.elapsed();

        let started = Instant::now();
        let slow = exhaustive_explore(&spec)?;
        let exhaustive_time = started.elapsed();
        assert!(
            fast.front.same_objectives(&slow.front),
            "EXPLORE must find the full Pareto front"
        );

        let moea = moea_explore(
            &spec,
            &MoeaOptions {
                population: 24,
                generations: 12,
                ..MoeaOptions::default()
            },
        )?;
        let reference = flexplore::Cost::new(2000);
        let hv_ratio = if fast.front.hypervolume(reference) > 0.0 {
            moea.front.hypervolume(reference) / fast.front.hypervolume(reference)
        } else {
            1.0
        };

        println!(
            "{:<8} {:>6} {:>10} {:>8} {:>8} {:>9} {:>10.1?} {:>10.1?} {:>8.2}",
            label,
            fast.stats.vertex_set_size,
            fast.stats.allocations.subsets,
            fast.stats.allocations.kept,
            fast.stats.implement_attempts,
            fast.stats.pareto_points,
            explore_time,
            exhaustive_time,
            hv_ratio,
        );
    }
    println!("\nmoea-hv: hypervolume of the evolutionary front relative to the exact front (1.00 = full front found)");
    Ok(())
}
