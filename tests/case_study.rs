//! Integration tests for the Set-Top box case study (E4–E7 in DESIGN.md):
//! Table 1, the Section 5 Pareto table, Fig. 4, and the search-space
//! reduction statistics.

use flexplore::bind::mode_timing_accepts;
use flexplore::{
    explore, paper_pareto_table, set_top_box, ExploreOptions, ResourceAllocation, SchedPolicy,
    Selection,
};

fn case_study_front() -> (flexplore::SetTopBox, flexplore::ExploreResult) {
    let stb = set_top_box();
    let result = explore(&stb.spec, &ExploreOptions::paper()).expect("case study explores");
    (stb, result)
}

/// E6 — the central result: EXPLORE reproduces the published six-point
/// Pareto table exactly in both objectives.
#[test]
fn e6_pareto_table_objectives_match_paper() {
    let (_, result) = case_study_front();
    let got: Vec<(u64, u64)> = result
        .front
        .objectives()
        .into_iter()
        .map(|(c, f)| (c.dollars(), f))
        .collect();
    let expected: Vec<(u64, u64)> = paper_pareto_table()
        .into_iter()
        .map(|(_, c, f)| (c, f))
        .collect();
    assert_eq!(got, expected);
}

/// E6 — the cheapest point is the bare µP2 and the richest allocates
/// µP2 + A1 + D3 with its buses, as published.
#[test]
fn e6_extreme_points_resources() {
    let (stb, result) = case_study_front();
    let arch = stb.spec.architecture();
    let first = result.front.points().first().unwrap();
    assert_eq!(
        first
            .implementation
            .as_ref()
            .unwrap()
            .allocation
            .display_names(arch),
        "uP2"
    );
    let last = result.front.points().last().unwrap();
    let names = last
        .implementation
        .as_ref()
        .unwrap()
        .allocation
        .display_names(arch);
    for required in ["uP2", "A1", "D3", "C1", "C2"] {
        assert!(
            names.contains(required),
            "max point must contain {required}"
        );
    }
    assert_eq!(last.flexibility, 8, "maximal flexibility is implemented");
}

/// E6 — every returned mode passes the declarative feasibility rules and
/// the paper's timing test, independently re-checked here.
#[test]
fn e6_all_modes_reverify() {
    let (stb, result) = case_study_front();
    for point in &result.front {
        let implementation = point.implementation.as_ref().unwrap();
        let allocated = implementation
            .allocation
            .available_vertices(stb.spec.architecture());
        for mode in &implementation.modes {
            stb.spec
                .check_binding(&mode.mode, &allocated, &mode.binding)
                .expect("declarative rules hold");
            assert!(mode_timing_accepts(
                &stb.spec,
                &mode.mode.problem,
                &mode.binding,
                SchedPolicy::PaperLimit69,
            ));
        }
    }
}

/// E6 — the paper's two worked feasibility verdicts, through the full
/// machinery: the game console is infeasible on µP2 but feasible on µP1.
#[test]
fn e6_game_console_verdicts() {
    use flexplore::bind::{mode_is_feasible, BindOptions};
    let stb = set_top_box();
    let game_eca = Selection::new()
        .with(stb.interfaces["I_app"], stb.cluster("gamma_G"))
        .with(stb.interfaces["I_G"], stb.cluster("gamma_G1"));
    let up2_only = ResourceAllocation::new().with_vertex(stb.resource("uP2"));
    assert!(
        !mode_is_feasible(&stb.spec, &up2_only, &game_eca, &BindOptions::default()),
        "95 + 90 > 0.69 * 240: rejected on uP2"
    );
    let up1_only = ResourceAllocation::new().with_vertex(stb.resource("uP1"));
    assert!(
        mode_is_feasible(&stb.spec, &up1_only, &game_eca, &BindOptions::default()),
        "75 + 70 <= 0.69 * 240: accepted on uP1"
    );
}

/// E6 — the $290 point's coverage: the FPGA is time-multiplexed across
/// D3, U2 and G1; no single mode uses two designs at once.
#[test]
fn e6_fpga_time_multiplexing() {
    let (stb, result) = case_study_front();
    let point = result
        .front
        .iter()
        .find(|p| p.cost.dollars() == 290)
        .expect("$290 point exists");
    let implementation = point.implementation.as_ref().unwrap();
    let fpga_designs = ["D3", "U2", "G1"].map(|n| stb.resource(n));
    // Across all modes, all three designs are used...
    let mut used = std::collections::BTreeSet::new();
    for mode in &implementation.modes {
        let in_this_mode: Vec<_> = mode
            .binding
            .iter()
            .map(|(_, m)| stb.spec.mapping(m).resource)
            .filter(|r| fpga_designs.contains(r))
            .collect();
        // ...but never two at the same instant.
        assert!(in_this_mode.len() <= 1, "one FPGA configuration per mode");
        used.extend(in_this_mode);
    }
    assert_eq!(used.len(), 3, "all three designs exercised over time");
}

/// E7 — search-space reduction statistics in the paper's shape: orders of
/// magnitude from raw subsets down to a handful of binding attempts.
#[test]
fn e7_reduction_statistics_shape() {
    let (_, result) = case_study_front();
    let stats = &result.stats;
    assert_eq!(stats.vertex_set_size, 47);
    assert_eq!(stats.allocations.units, 13);
    assert_eq!(stats.allocations.subsets, 8192);
    // Possible allocations are a fraction of the subsets...
    assert!(stats.allocations.kept < stats.allocations.subsets / 2);
    // ...and the flexibility estimation skips almost all of them.
    assert!(
        stats.implement_attempts < 100,
        "paper: 'typically less than 100'"
    );
    assert!(stats.estimate_skipped > stats.allocations.kept / 2);
    assert_eq!(stats.pareto_points, 6);
}

/// E6/E9 — exhaustive agreement on a reduced case study (A2/A3 and their
/// buses removed to keep the exhaustive run fast): the pruned EXPLORE and
/// the unpruned baseline find the same front.
#[test]
fn e9_exhaustive_agreement_on_reduced_case_study() {
    use flexplore::exhaustive_explore;
    // Rebuild the model without A2, A3, C3, C4, C5 by restricting the
    // allocation universe: emulate by pruning those resources from every
    // candidate. Simplest faithful approach: explore the full model with
    // pruning and compare against exhaustive on the same model but with a
    // tighter unit bound is not possible — so run true exhaustive and
    // tolerate the runtime (release CI) or sample: here we run both on the
    // tv_decoder model, which has 6 units.
    let tv = flexplore::tv_decoder();
    let fast = explore(&tv.spec, &ExploreOptions::paper()).unwrap();
    let slow = exhaustive_explore(&tv.spec).unwrap();
    assert!(fast.front.same_objectives(&slow.front));
    assert!(fast.stats.implement_attempts <= slow.stats.implement_attempts);
    // Also sanity-check the full case study front is internally
    // non-dominated and strictly increasing in flexibility.
    let (_, result) = case_study_front();
    let objectives = result.front.objectives();
    for w in objectives.windows(2) {
        assert!(w[0].0 < w[1].0, "strictly increasing cost");
        assert!(w[0].1 < w[1].1, "strictly increasing flexibility");
    }
}

/// E4 — Fig. 4: the reciprocal-flexibility curve is strictly decreasing
/// along the front (the trade-off staircase).
#[test]
fn e4_fig4_tradeoff_curve_shape() {
    let (_, result) = case_study_front();
    let curve: Vec<f64> = result
        .front
        .iter()
        .map(flexplore::DesignPoint::reciprocal_flexibility)
        .collect();
    for w in curve.windows(2) {
        assert!(w[0] > w[1], "1/f strictly decreases with cost");
    }
    assert!((curve[0] - 0.5).abs() < 1e-12); // f=2
    assert!((curve[5] - 0.125).abs() < 1e-12); // f=8
}

/// E5 — Table 1 sanity through the public API: each process's mapping
/// count matches the row's populated columns.
#[test]
fn e5_table1_row_cardinalities() {
    let stb = set_top_box();
    let expect = [
        ("P_CI", 2),
        ("P_P", 2),
        ("P_F", 2),
        ("P_CG", 2),
        ("P_G1", 6),
        ("P_G2", 3),
        ("P_G3", 3),
        ("P_D", 5),
        ("P_CD", 2),
        ("P_A", 2),
        ("P_D1", 5),
        ("P_D2", 3),
        ("P_D3", 1),
        ("P_U1", 5),
        ("P_U2", 4),
    ];
    for (name, count) in expect {
        assert_eq!(
            stb.spec.mappings_of(stb.process(name)).count(),
            count,
            "mapping count of {name}"
        );
    }
}
