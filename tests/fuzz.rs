//! Tier-1 fuzzing regression tests: a bounded smoke campaign per domain
//! profile, byte-reproducibility of reports, the JSON round-trip contract
//! for every bundled and generated model, and the replay of the committed
//! repro corpus (`tests/corpus/`) under every oracle and both enumerators.

use flexplore::models::{spec_from_json, spec_to_json};
use flexplore::{
    automotive_spec, baseband_spec, cloud_fpga_spec, dual_slot_fpga, explore, set_top_box,
    synthetic_spec, tv_decoder, AutomotiveConfig, BasebandConfig, CloudFpgaConfig, CompiledSpec,
    Enumerator, ExploreOptions, SpecificationGraph, SyntheticConfig,
};
use flexplore_fuzz::{generate, replay_dir, run_fuzz, DomainProfile, FuzzOptions, ReproCase};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Every bundled model plus a seeded sample of every generator family.
fn all_models() -> Vec<(String, SpecificationGraph)> {
    let mut models = vec![
        ("set_top_box".to_owned(), set_top_box().spec),
        ("tv_decoder".to_owned(), tv_decoder().spec),
        ("dual_slot_fpga".to_owned(), dual_slot_fpga().spec),
        (
            "synthetic-small".to_owned(),
            synthetic_spec(&SyntheticConfig::small(7)),
        ),
        (
            "automotive-default".to_owned(),
            automotive_spec(&AutomotiveConfig::default()),
        ),
        (
            "baseband-default".to_owned(),
            baseband_spec(&BasebandConfig::default()),
        ),
        (
            "cloud-fpga-default".to_owned(),
            cloud_fpga_spec(&CloudFpgaConfig::default()),
        ),
    ];
    for profile in DomainProfile::all() {
        for seed in 0..3 {
            models.push((format!("{profile}-seed{seed}"), generate(profile, seed)));
        }
    }
    models
}

#[test]
fn fuzz_smoke_every_profile_is_clean() {
    let report = run_fuzz(&FuzzOptions {
        seed: 42,
        iterations: 4,
        profiles: DomainProfile::all().to_vec(),
        threads: 1,
        corpus_dir: None,
    });
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.specs, 20);
    assert_eq!(report.oracle_checks, 160);
}

#[test]
fn fuzz_reports_are_byte_reproducible_across_runs_and_threads() {
    let mut options = FuzzOptions {
        seed: 7,
        iterations: 2,
        profiles: DomainProfile::all().to_vec(),
        threads: 1,
        corpus_dir: None,
    };
    let first = run_fuzz(&options).render_text();
    let second = run_fuzz(&options).render_text();
    assert_eq!(
        first, second,
        "equal options must reproduce byte-identically"
    );
    options.threads = 4;
    let threaded = run_fuzz(&options).render_text();
    assert_eq!(first, threaded, "thread count must not change the report");
}

#[test]
fn every_model_survives_the_json_round_trip_with_an_identical_front() {
    for (name, spec) in all_models() {
        let json = spec_to_json(&spec).unwrap_or_else(|e| panic!("{name}: serialize: {e}"));
        let reloaded = spec_from_json(&json).unwrap_or_else(|e| panic!("{name}: deserialize: {e}"));
        CompiledSpec::try_new(&reloaded).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let before = explore(&spec, &ExploreOptions::paper())
            .unwrap_or_else(|e| panic!("{name}: explore original: {e}"));
        let after = explore(&reloaded, &ExploreOptions::paper())
            .unwrap_or_else(|e| panic!("{name}: explore reloaded: {e}"));
        assert_eq!(
            before.front.objectives(),
            after.front.objectives(),
            "{name}: front changed across the JSON round-trip"
        );
    }
}

#[test]
fn corpus_replays_clean_under_every_oracle() {
    let report = replay_dir(&corpus_dir()).expect("the committed corpus parses");
    assert!(
        !report.cases.is_empty(),
        "tests/corpus/ ships seeded repro cases; replay found none"
    );
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn corpus_specs_explore_identically_under_both_enumerators() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus/ exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "tests/corpus/ ships seeded repro cases");
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let case = ReproCase::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let spec = spec_from_json(&case.spec_json).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut flat = ExploreOptions::paper();
        flat.allocation.enumerator = Enumerator::Flat;
        let mut bnb = ExploreOptions::paper();
        bnb.allocation.enumerator = Enumerator::BranchAndBound;
        let a = explore(&spec, &flat).unwrap_or_else(|e| panic!("{name}: flat: {e}"));
        let b = explore(&spec, &bnb).unwrap_or_else(|e| panic!("{name}: bnb: {e}"));
        assert_eq!(
            a.front.objectives(),
            b.front.objectives(),
            "{name}: enumerators disagree"
        );
    }
}
