//! Observability contract tests: the instrumented engines must change
//! nothing about the search, counter totals must be byte-identical for
//! every thread count, the driver-side phases must tile the run's
//! wall-clock, and the reports/event logs must be structurally
//! deterministic and serde-stable.

use flexplore::{
    explore, explore_resilient, explore_resilient_obs, explore_with_obs,
    k_resilient_flexibility_obs, lint_spec_obs, set_top_box, synthetic_spec, AllocationOptions,
    ExploreOptions, ImplementOptions, ObsSink, RunReport, SpecificationGraph, SyntheticConfig,
};

/// The base options with `threads` applied to both the candidate scan and
/// the EXPLORE driver.
fn threaded(threads: usize) -> ExploreOptions {
    ExploreOptions {
        allocation: AllocationOptions {
            threads,
            ..AllocationOptions::default()
        },
        ..ExploreOptions::paper()
    }
    .with_threads(threads)
}

/// One instrumented EXPLORE, returning the aggregated report.
fn profiled_explore(spec: &SpecificationGraph, threads: usize) -> RunReport {
    let obs = ObsSink::enabled();
    explore_with_obs(spec, &threaded(threads), &obs).expect("explore succeeds");
    obs.report("explore", spec.name(), threads)
}

#[test]
fn observed_explore_reproduces_the_plain_result() {
    let stb = set_top_box();
    let plain = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let obs = ObsSink::enabled();
    let observed = explore_with_obs(&stb.spec, &ExploreOptions::paper(), &obs).unwrap();
    assert_eq!(plain.front.objectives(), observed.front.objectives());
    assert_eq!(
        plain.stats.implement_attempts,
        observed.stats.implement_attempts
    );

    // The disabled sink is inert: same result, empty report.
    let disabled = ObsSink::disabled();
    let silent = explore_with_obs(&stb.spec, &ExploreOptions::paper(), &disabled).unwrap();
    assert_eq!(plain.front.objectives(), silent.front.objectives());
    let report = disabled.report("explore", "set_top_box", 1);
    assert!(report.phases.is_empty());
    assert!(report.counters.is_empty());
    assert_eq!(report.wall_ns, 0);
}

#[test]
fn counter_totals_are_byte_identical_across_thread_counts() {
    let specs = [
        set_top_box().spec,
        synthetic_spec(&SyntheticConfig::medium(11)),
    ];
    for spec in &specs {
        let baseline = profiled_explore(spec, 1);
        let baseline_counters = baseline.counters_json().unwrap();
        assert!(!baseline.counters.is_empty(), "{}", spec.name());
        for threads in [2, 4] {
            let report = profiled_explore(spec, threads);
            assert_eq!(
                baseline_counters,
                report.counters_json().unwrap(),
                "{} at {threads} thread(s)",
                spec.name()
            );
        }
    }
}

#[test]
fn top_level_phases_tile_the_wall_clock() {
    let stb = set_top_box();
    let report = profiled_explore(&stb.spec, 1);
    let phase_sum = report.top_level_wall_ns();
    assert!(phase_sum <= report.wall_ns, "phases cannot exceed the wall");
    // compile + enumerate + bind + pareto are disjoint driver-side
    // segments covering everything but argument plumbing; the untracked
    // remainder must stay a sliver of the run.
    assert!(
        phase_sum as f64 >= 0.80 * report.wall_ns as f64,
        "untracked time: {} of {} ns",
        report.wall_ns - phase_sum,
        report.wall_ns
    );
    // The dotted sub-phases measure worker busy-time inside those
    // segments and are excluded from the tiling sum.
    assert!(report.phases.iter().any(|p| p.phase.starts_with("bind.")));
}

#[test]
fn run_report_round_trips_through_serde() {
    let stb = set_top_box();
    let report = profiled_explore(&stb.spec, 3);
    let json = report.to_json().unwrap();
    let back = RunReport::from_json(&json).unwrap();
    assert_eq!(report, back);
    assert_eq!(json, back.to_json().unwrap(), "re-render is stable");
    assert_eq!(back.run, "explore");
    assert_eq!(back.spec, "set-top-box");
    assert_eq!(back.threads, 3);
    assert_eq!(back.counter("pareto_points"), Some(6));
}

#[test]
fn event_logs_are_structurally_deterministic() {
    // Drop the only run-varying payloads (the _ns values) and the two
    // logs of independent runs must be byte-identical.
    fn strip_ns(log: &str) -> String {
        let mut out = String::new();
        let mut chars = log.chars().peekable();
        while let Some(c) = chars.next() {
            out.push(c);
            if out.ends_with("_ns\":") {
                while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                    chars.next();
                }
                out.push('0');
            }
        }
        out
    }
    let stb = set_top_box();
    let logs: Vec<String> = (0..2)
        .map(|_| {
            let obs = ObsSink::enabled();
            explore_with_obs(&stb.spec, &threaded(1), &obs).unwrap();
            let report = obs.report("explore", stb.spec.name(), 1);
            obs.events_jsonl(&report)
        })
        .collect();
    assert_eq!(strip_ns(&logs[0]), strip_ns(&logs[1]));
    assert!(logs[0].starts_with("{\"ev\":\"run\""));
    assert!(logs[0]
        .lines()
        .last()
        .unwrap()
        .starts_with("{\"ev\":\"end\""));
}

#[test]
fn resilience_counters_are_thread_invariant() {
    let stb = set_top_box();
    let run = |threads: usize| {
        let obs = ObsSink::enabled();
        let front = explore_resilient_obs(&stb.spec, 1, &threaded(threads), &obs).unwrap();
        (front, obs.report("resilience", stb.spec.name(), threads))
    };
    let (front1, report1) = run(1);
    let (front4, report4) = run(4);
    let plain = explore_resilient(&stb.spec, 1, &ExploreOptions::paper()).unwrap();
    assert_eq!(plain.len(), front1.len());
    assert_eq!(front1.len(), front4.len());
    assert_eq!(
        report1.counters_json().unwrap(),
        report4.counters_json().unwrap()
    );
    assert!(report1.counter("kill_evaluations").unwrap_or(0) > 0);
}

#[test]
fn kill_sweep_and_lint_report_their_phases() {
    let stb = set_top_box();
    let result = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let point = result
        .front
        .into_iter()
        .max_by_key(|p| p.flexibility)
        .unwrap();
    let implementation = point
        .implementation
        .clone()
        .expect("point carries a platform");
    let obs = ObsSink::enabled();
    k_resilient_flexibility_obs(
        &stb.spec,
        &implementation,
        1,
        &ImplementOptions::default(),
        2,
        &obs,
    )
    .unwrap();
    let report = obs.report("faults", stb.spec.name(), 2);
    let names: Vec<&str> = report.phases.iter().map(|p| p.phase.as_str()).collect();
    assert!(names.contains(&"compile"), "{names:?}");
    assert!(names.contains(&"resilience"), "{names:?}");
    assert!(report.counter("kill_evaluations").unwrap_or(0) > 0);

    let obs = ObsSink::enabled();
    let lint = lint_spec_obs(&stb.spec, &obs);
    assert!(lint.is_clean());
    let report = obs.report("lint", stb.spec.name(), 1);
    let names: Vec<&str> = report.phases.iter().map(|p| p.phase.as_str()).collect();
    for needle in [
        "lint.structural",
        "lint.hierarchy",
        "lint.mapping",
        "lint.period",
        "lint.semantic",
    ] {
        assert!(names.contains(&needle), "missing {needle}: {names:?}");
    }
    assert_eq!(report.counter("lint_errors"), Some(0));
    assert_eq!(report.counter("lint_warnings"), Some(0));
}
