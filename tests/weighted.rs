//! Integration tests for the weighted-flexibility variant (footnote 2) on
//! the Set-Top box case study.

use flexplore::flex::FlexibilityWeights;
use flexplore::{explore, explore_weighted, set_top_box, ExploreOptions};

/// Uniform weights reproduce the unweighted Section 5 front.
#[test]
fn uniform_weights_reproduce_the_paper_front() {
    let stb = set_top_box();
    let unweighted = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let weighted = explore_weighted(
        &stb.spec,
        &FlexibilityWeights::new(),
        &ExploreOptions::paper(),
    )
    .unwrap();
    assert_eq!(weighted.front.len(), unweighted.front.len());
    for (w, u) in weighted.front.iter().zip(unweighted.front.iter()) {
        assert_eq!(w.cost, u.cost);
        assert!((w.weighted_flexibility - u.flexibility as f64).abs() < 1e-9);
    }
}

/// Market weighting: the third decryption algorithm (rare broadcast
/// standard) is worth little, the game classes a lot — the weighted front
/// skips the D3-centric platforms and jumps to the ASIC.
#[test]
fn market_weights_reshape_the_front() {
    let stb = set_top_box();
    let weights = FlexibilityWeights::new()
        .with(stb.cluster("gamma_D3"), 0.1)
        .with(stb.cluster("gamma_G1"), 2.0)
        .with(stb.cluster("gamma_G2"), 2.0)
        .with(stb.cluster("gamma_G3"), 2.0);
    let result = explore_weighted(&stb.spec, &weights, &ExploreOptions::paper()).unwrap();
    // The front remains cost-sorted and strictly improving.
    for w in result.front.windows(2) {
        assert!(w[0].cost < w[1].cost);
        assert!(w[0].weighted_flexibility < w[1].weighted_flexibility);
    }
    // The game-heavy weighting makes the µP1 point (which adds the game)
    // worth 1 + 2 + 1 = 4 weighted, and the ASIC platform dominates the
    // D3-only upgrades: check the flagship value.
    let best = result.front.last().unwrap();
    // All clusters: γI (1) + games (3·2) + decrypt (1 + 1 + 0.1) +
    // uncompress (1 + 1) − default (1) per extra interface in γ_D, and
    // −1·default for the γ_G interface... rather than re-deriving the
    // closed form, assert the exact metric value computed independently:
    let expected = flexplore::weighted_flexibility(stb.spec.problem().graph(), &weights, |_| true);
    assert!((best.weighted_flexibility - expected).abs() < 1e-9);
    assert!(expected > 8.0, "game upweighting raises the ceiling");
}

/// Zero-weighting an entire application removes its platforms' advantage:
/// with the game worthless, no Pareto point pays for G-only resources.
#[test]
fn worthless_game_removes_game_only_upgrades() {
    let stb = set_top_box();
    let weights = FlexibilityWeights::new()
        .with(stb.cluster("gamma_G"), 0.0)
        .with(stb.cluster("gamma_G1"), 0.0)
        .with(stb.cluster("gamma_G2"), 0.0)
        .with(stb.cluster("gamma_G3"), 0.0);
    let result = explore_weighted(&stb.spec, &weights, &ExploreOptions::paper()).unwrap();
    // µP1's only edge over µP2 is the game: with the game worthless the
    // $120 point disappears from the weighted front.
    assert!(
        result.front.iter().all(|p| p.cost.dollars() != 120),
        "µP1 point must vanish: {:?}",
        result
            .front
            .iter()
            .map(|p| (p.cost.dollars(), p.weighted_flexibility))
            .collect::<Vec<_>>()
    );
}
