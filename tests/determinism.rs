//! End-to-end determinism: every exploration entry point is a pure
//! function of its inputs — same spec, same options, same output —
//! including under multithreaded candidate scanning and after JSON
//! round-trips. Reproducibility is a first-class requirement for a
//! reproduction repository.

use flexplore::adaptive::{generate_trace, RandomFaultConfig, TraceConfig};
use flexplore::models::{spec_from_json, spec_to_json};
use flexplore::{
    explore, implement_default, moea_explore, run_with_faults, set_top_box, synthetic_spec,
    AdaptiveSystem, AllocationOptions, ExploreOptions, FaultPlan, FaultScenario, MoeaOptions,
    ReconfigCost, ResourceAllocation, SyntheticConfig, Time, VertexId,
};

#[test]
fn explore_is_deterministic() {
    let stb = set_top_box();
    let a = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let b = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    assert_eq!(a.front.objectives(), b.front.objectives());
    assert_eq!(a.stats, b.stats);
}

#[test]
fn threaded_exploration_matches_sequential() {
    let stb = set_top_box();
    let sequential = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let threaded = explore(
        &stb.spec,
        &ExploreOptions {
            allocation: AllocationOptions {
                threads: 8,
                ..AllocationOptions::default()
            },
            ..ExploreOptions::paper()
        },
    )
    .unwrap();
    assert_eq!(sequential.front.objectives(), threaded.front.objectives());
    assert_eq!(sequential.stats, threaded.stats);
    // Even the realizing allocations match (stable candidate order).
    for (s, t) in sequential.front.iter().zip(threaded.front.iter()) {
        assert_eq!(
            s.implementation.as_ref().unwrap().allocation,
            t.implementation.as_ref().unwrap().allocation
        );
    }
}

#[test]
fn json_round_trip_preserves_exploration() {
    for seed in [1, 7, 23] {
        let spec = synthetic_spec(&SyntheticConfig::medium(seed));
        let reloaded = spec_from_json(&spec_to_json(&spec).unwrap()).unwrap();
        let a = explore(&spec, &ExploreOptions::paper()).unwrap();
        let b = explore(&reloaded, &ExploreOptions::paper()).unwrap();
        assert_eq!(a.front.objectives(), b.front.objectives());
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn empty_fault_plan_is_byte_identical_to_the_faultless_baseline() {
    let stb = set_top_box();
    let allocation = ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("C1"))
        .with_cluster(stb.design("D3"))
        .with_cluster(stb.design("U2"))
        .with_cluster(stb.design("G1"));
    let implementation = implement_default(&stb.spec, &allocation).unwrap();
    let trace = generate_trace(
        &stb.spec,
        &TraceConfig {
            seed: 7,
            length: 100,
            skewed: false,
        },
    );
    let reconfig = ReconfigCost::Uniform(Time::from_ns(1_000));

    let report = run_with_faults(
        &stb.spec,
        &implementation,
        reconfig,
        &trace,
        &FaultScenario::default(), // empty plan
    )
    .unwrap();
    assert!(report.fault_timeline.is_empty());
    assert_eq!(report.surviving_flexibility, report.baseline_flexibility);

    // The switch timeline must be byte-identical to a plain trace replay
    // with no fault machinery in the loop.
    let mut baseline = AdaptiveSystem::new(&stb.spec, &implementation, reconfig);
    for request in &trace {
        let _ = baseline.switch_to(request);
    }
    let with_faults = serde_json::to_string(&report.switch_timeline).unwrap();
    let without = serde_json::to_string(&baseline.timeline().to_vec()).unwrap();
    assert_eq!(with_faults, without);
}

#[test]
fn fault_scenarios_are_seed_deterministic() {
    let stb = set_top_box();
    let allocation = ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("C1"))
        .with_cluster(stb.design("D3"))
        .with_cluster(stb.design("U2"))
        .with_cluster(stb.design("G1"));
    let implementation = implement_default(&stb.spec, &allocation).unwrap();
    let trace = generate_trace(
        &stb.spec,
        &TraceConfig {
            seed: 7,
            length: 50,
            skewed: false,
        },
    );
    let candidates: Vec<VertexId> = allocation
        .available_vertices(stb.spec.architecture())
        .into_iter()
        .collect();
    let config = RandomFaultConfig {
        faults: 3,
        ..RandomFaultConfig::default()
    };
    let run = |seed: u64| {
        let scenario = FaultScenario {
            plan: FaultPlan::randomized(seed, &candidates, &config),
            ..FaultScenario::default()
        };
        let report = run_with_faults(
            &stb.spec,
            &implementation,
            ReconfigCost::Uniform(Time::from_ns(1_000)),
            &trace,
            &scenario,
        )
        .unwrap();
        serde_json::to_string(&report).unwrap()
    };
    // Same seed: the full report (both timelines included) is identical.
    assert_eq!(run(3), run(3));
    assert_eq!(run(11), run(11));
}

#[test]
fn moea_is_seed_deterministic_on_the_case_study() {
    let stb = set_top_box();
    let options = MoeaOptions {
        population: 12,
        generations: 4,
        ..MoeaOptions::default()
    };
    let a = moea_explore(&stb.spec, &options).unwrap();
    let b = moea_explore(&stb.spec, &options).unwrap();
    assert_eq!(a.front.objectives(), b.front.objectives());
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.implement_attempts, b.implement_attempts);
}
