//! End-to-end determinism: every exploration entry point is a pure
//! function of its inputs — same spec, same options, same output —
//! including under multithreaded candidate scanning and after JSON
//! round-trips. Reproducibility is a first-class requirement for a
//! reproduction repository.

use flexplore::models::{spec_from_json, spec_to_json};
use flexplore::{
    explore, moea_explore, set_top_box, synthetic_spec, AllocationOptions, ExploreOptions,
    MoeaOptions, SyntheticConfig,
};

#[test]
fn explore_is_deterministic() {
    let stb = set_top_box();
    let a = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let b = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    assert_eq!(a.front.objectives(), b.front.objectives());
    assert_eq!(a.stats, b.stats);
}

#[test]
fn threaded_exploration_matches_sequential() {
    let stb = set_top_box();
    let sequential = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let threaded = explore(
        &stb.spec,
        &ExploreOptions {
            allocation: AllocationOptions {
                threads: 8,
                ..AllocationOptions::default()
            },
            ..ExploreOptions::paper()
        },
    )
    .unwrap();
    assert_eq!(sequential.front.objectives(), threaded.front.objectives());
    assert_eq!(sequential.stats, threaded.stats);
    // Even the realizing allocations match (stable candidate order).
    for (s, t) in sequential.front.iter().zip(threaded.front.iter()) {
        assert_eq!(
            s.implementation.as_ref().unwrap().allocation,
            t.implementation.as_ref().unwrap().allocation
        );
    }
}

#[test]
fn json_round_trip_preserves_exploration() {
    for seed in [1, 7, 23] {
        let spec = synthetic_spec(&SyntheticConfig::medium(seed));
        let reloaded = spec_from_json(&spec_to_json(&spec).unwrap()).unwrap();
        let a = explore(&spec, &ExploreOptions::paper()).unwrap();
        let b = explore(&reloaded, &ExploreOptions::paper()).unwrap();
        assert_eq!(a.front.objectives(), b.front.objectives());
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn moea_is_seed_deterministic_on_the_case_study() {
    let stb = set_top_box();
    let options = MoeaOptions {
        population: 12,
        generations: 4,
        ..MoeaOptions::default()
    };
    let a = moea_explore(&stb.spec, &options).unwrap();
    let b = moea_explore(&stb.spec, &options).unwrap();
    assert_eq!(a.front.objectives(), b.front.objectives());
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.implement_attempts, b.implement_attempts);
}
