//! Integration tests of the flexlint static analyzer.
//!
//! Exercises every diagnostic code `F001`–`F012` on purpose-built
//! defective specifications, checks the bundled case-study models pass
//! clean, and property-tests the contract the exploration pre-flight
//! relies on: a specification without error-level findings never makes
//! the explorer fail structurally.
//!
//! Defects the public builder API refuses to construct (dangling ids,
//! containment cycles, out-of-range mapping endpoints) are forged by
//! editing the JSON form and reloading it **unvalidated** — exactly the
//! path `flexplore lint` uses on files from disk.

use flexplore::models::{spec_from_json_unvalidated, spec_to_json};
use flexplore::{
    dual_slot_fpga, explore, lint_spec, set_top_box, synthetic_spec, tv_decoder, ArchitectureGraph,
    Cost, ExploreOptions, ProblemGraph, ProcessAttrs, Scope, Severity, SpecificationGraph,
    SyntheticConfig, Time,
};
use proptest::prelude::*;

fn codes(spec: &SpecificationGraph) -> Vec<&'static str> {
    lint_spec(spec).diagnostics.iter().map(|d| d.code).collect()
}

/// One clustered process mapped to one cpu — the smallest specification
/// with every arena populated, used as the substrate for JSON forging.
fn clustered_spec() -> SpecificationGraph {
    let mut p = ProblemGraph::new("p");
    let i = p.add_interface(Scope::Top, "I");
    let c = p.add_cluster(i, "c");
    let v = p.add_process(c.into(), "v");
    let mut a = ArchitectureGraph::new("a");
    let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(1));
    let mut spec = SpecificationGraph::new("s", p, a);
    spec.add_mapping(v, cpu, Time::from_ns(1)).unwrap();
    spec
}

/// Serializes the spec, rewrites the first occurrence of `from`, and
/// reloads without validation — the defect survives into the lint run.
fn forge(spec: &SpecificationGraph, from: &str, to: &str) -> SpecificationGraph {
    let json = spec_to_json(spec).unwrap();
    let forged = json.replacen(from, to, 1);
    assert_ne!(json, forged, "forge pattern {from:?} not found");
    spec_from_json_unvalidated(&forged).unwrap()
}

#[test]
fn f001_unrefinable_interfaces_in_both_graphs() {
    let mut p = ProblemGraph::new("p");
    p.add_interface(Scope::Top, "I_empty");
    let report = lint_spec(&SpecificationGraph::new(
        "s",
        p,
        ArchitectureGraph::new("a"),
    ));
    assert!(report.has_code("F001"));
    assert!(report.has_errors());

    let mut a = ArchitectureGraph::new("a");
    a.add_interface(Scope::Top, "FPGA");
    let report = lint_spec(&SpecificationGraph::new("s", ProblemGraph::new("p"), a));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F001")
        .unwrap();
    assert_eq!(d.location.kind(), "arch-interface");
    assert!(d.message.contains("loadable designs"), "{}", d.message);
}

#[test]
fn f002_containment_cycle_is_reported_not_crashed() {
    // The owning interface of cluster 0 is moved inside cluster 0: the
    // containment chain re-enters itself.
    let spec = forge(
        &clustered_spec(),
        "\"scope\": \"Top\"",
        "\"scope\": {\"Cluster\": 0}",
    );
    let report = lint_spec(&spec);
    assert!(report.has_code("F002"), "{}", report.render_text());
    assert!(report.has_errors());
}

#[test]
fn f003_dangling_reference_is_reported_not_crashed() {
    // The process's scope points at cluster 7, which does not exist.
    let spec = forge(&clustered_spec(), "\"Cluster\": 0", "\"Cluster\": 7");
    let report = lint_spec(&spec);
    assert!(report.has_code("F003"), "{}", report.render_text());
    assert!(report.has_errors());
}

#[test]
fn f004_unmapped_leaves_escalate_at_top_level() {
    let mut p = ProblemGraph::new("p");
    p.add_process(Scope::Top, "orphan");
    let report = lint_spec(&SpecificationGraph::new(
        "s",
        p,
        ArchitectureGraph::new("a"),
    ));
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F004")
        .unwrap();
    assert_eq!(d.severity, Severity::Error);

    let mut p = ProblemGraph::new("p");
    let i = p.add_interface(Scope::Top, "I");
    let c1 = p.add_cluster(i, "c1");
    let v1 = p.add_process(c1.into(), "v1");
    let c2 = p.add_cluster(i, "c2");
    p.add_process(c2.into(), "v2"); // unmapped, but only one alternative dies
    let mut a = ArchitectureGraph::new("a");
    let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(1));
    let mut spec = SpecificationGraph::new("s", p, a);
    spec.add_mapping(v1, cpu, Time::from_ns(1)).unwrap();
    let report = lint_spec(&spec);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F004")
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    // ... and the dead alternative is flagged as such.
    assert!(report.has_code("F008"));
    assert!(!report.has_errors());
}

#[test]
fn f005_malformed_mapping_endpoints() {
    let spec = forge(&clustered_spec(), "\"process\": 0", "\"process\": 99");
    assert!(codes(&spec).contains(&"F005"));

    let spec = forge(&clustered_spec(), "\"resource\": 0", "\"resource\": 99");
    let report = lint_spec(&spec);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F005")
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location.kind(), "mapping");
}

#[test]
fn f006_duplicate_mappings_note_and_warning() {
    let mut p = ProblemGraph::new("p");
    let t = p.add_process(Scope::Top, "t");
    let mut a = ArchitectureGraph::new("a");
    let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(1));
    let mut spec = SpecificationGraph::new("s", p, a);
    spec.add_mapping(t, cpu, Time::from_ns(1)).unwrap();
    spec.add_mapping(t, cpu, Time::from_ns(1)).unwrap();
    let report = lint_spec(&spec);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F006")
        .unwrap();
    assert_eq!(d.severity, Severity::Note);

    spec.add_mapping(t, cpu, Time::from_ns(5)).unwrap();
    let report = lint_spec(&spec);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F006")
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn f007_unroutable_dependence() {
    let mut p = ProblemGraph::new("p");
    let t1 = p.add_process(Scope::Top, "t1");
    let t2 = p.add_process(Scope::Top, "t2");
    p.add_dependence(t1, t2).unwrap();
    let mut a = ArchitectureGraph::new("a");
    let r1 = a.add_resource(Scope::Top, "r1", Cost::new(1));
    let r2 = a.add_resource(Scope::Top, "r2", Cost::new(1));
    let mut spec = SpecificationGraph::new("s", p, a);
    spec.add_mapping(t1, r1, Time::from_ns(1)).unwrap();
    spec.add_mapping(t2, r2, Time::from_ns(1)).unwrap();
    let report = lint_spec(&spec);
    assert!(report.has_code("F007"));
    assert!(report.has_errors());
}

#[test]
fn f009_identical_alternatives() {
    let mut p = ProblemGraph::new("p");
    let i = p.add_interface(Scope::Top, "I");
    let c1 = p.add_cluster(i, "c1");
    let v1 = p.add_process(c1.into(), "v1");
    let c2 = p.add_cluster(i, "c2");
    let v2 = p.add_process(c2.into(), "v2");
    let mut a = ArchitectureGraph::new("a");
    let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(1));
    let mut spec = SpecificationGraph::new("s", p, a);
    spec.add_mapping(v1, cpu, Time::from_ns(1)).unwrap();
    spec.add_mapping(v2, cpu, Time::from_ns(1)).unwrap();
    let report = lint_spec(&spec);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F009")
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn f010_f011_period_sanity() {
    let mut p = ProblemGraph::new("p");
    let t = p.add_process_with(Scope::Top, "t", ProcessAttrs::new().with_period(Time::ZERO));
    let mut a = ArchitectureGraph::new("a");
    let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(1));
    let mut spec = SpecificationGraph::new("s", p, a);
    spec.add_mapping(t, cpu, Time::from_ns(1)).unwrap();
    assert!(codes(&spec).contains(&"F010"));

    let mut p = ProblemGraph::new("p");
    let t = p.add_process_with(
        Scope::Top,
        "t",
        ProcessAttrs::new().with_period(Time::from_ns(10)),
    );
    let mut a = ArchitectureGraph::new("a");
    let cpu = a.add_resource(Scope::Top, "cpu", Cost::new(1));
    let mut spec = SpecificationGraph::new("s", p, a);
    spec.add_mapping(t, cpu, Time::from_ns(20)).unwrap();
    let report = lint_spec(&spec);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "F011")
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn f012_no_bindable_activation() {
    let mut p = ProblemGraph::new("p");
    let i = p.add_interface(Scope::Top, "I");
    let c1 = p.add_cluster(i, "c1");
    p.add_process(c1.into(), "v1");
    let c2 = p.add_cluster(i, "c2");
    p.add_process(c2.into(), "v2");
    let mut a = ArchitectureGraph::new("a");
    a.add_resource(Scope::Top, "cpu", Cost::new(1));
    let report = lint_spec(&SpecificationGraph::new("s", p, a));
    assert!(report.has_code("F012"));
    assert!(report.has_errors());
}

#[test]
fn bundled_case_studies_lint_clean() {
    for (name, spec) in [
        ("set_top_box", set_top_box().spec),
        ("tv_decoder", tv_decoder().spec),
        ("dual_slot_fpga", dual_slot_fpga().spec),
    ] {
        let report = lint_spec(&spec);
        assert!(report.is_clean(), "{name}: {}", report.render_text());
    }
}

#[test]
fn reports_are_deterministic_and_renderable() {
    let spec = forge(&clustered_spec(), "\"Cluster\": 0", "\"Cluster\": 7");
    let a = lint_spec(&spec);
    let b = lint_spec(&spec);
    assert_eq!(a, b);
    assert_eq!(a.render_json(), b.render_json());
    assert!(a.render_text().contains("error(s)"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The contract the CLI pre-flight gate is built on: a specification
    /// with no error-level lint findings always explores successfully —
    /// the solver may find few (or zero-flexibility) points, but it never
    /// fails structurally.
    #[test]
    fn lint_error_free_specs_explore_cleanly(seed in 0u64..500) {
        let spec = synthetic_spec(&SyntheticConfig::small(seed));
        let report = lint_spec(&spec);
        prop_assert!(
            !report.has_errors(),
            "seed {}: {}", seed, report.render_text()
        );
        let result = explore(&spec, &ExploreOptions::paper());
        prop_assert!(result.is_ok(), "seed {}: {:?}", seed, result.err());
    }
}
