//! Integration tests for the run-time layers built on top of the
//! exploration: static scheduling of modes (the paper's future-work item)
//! and adaptive mode management with reconfiguration accounting.

use flexplore::adaptive::{AdaptiveSystem, ReconfigCost};
use flexplore::schedule::{schedule_mode, CommDelay};
use flexplore::{
    explore, implement_default, set_top_box, ExploreOptions, ResourceAllocation, Selection, Time,
};

/// Every mode on the explored Pareto front admits a static schedule whose
/// makespan meets the minimal output periods exactly.
#[test]
fn every_front_mode_schedules_within_its_period() {
    let stb = set_top_box();
    let result = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    let mut scheduled = 0;
    for point in &result.front {
        let implementation = point.implementation.as_ref().unwrap();
        for mode in &implementation.modes {
            let schedule = schedule_mode(
                &stb.spec,
                &mode.mode.problem,
                &mode.binding,
                CommDelay::Zero,
            )
            .expect("front modes schedule");
            assert!(
                schedule.meets_periods(&stb.spec),
                "mode violates its period with makespan {}",
                schedule.makespan()
            );
            scheduled += 1;
        }
    }
    assert!(scheduled > 10, "the front carries many modes");
}

/// The paper's worked example, scheduled exactly: the game console on µP1
/// finishes at 25 + 75 + 70 = 170 ns, within its 240 ns period.
#[test]
fn game_on_up1_schedules_to_170ns() {
    let stb = set_top_box();
    let allocation = ResourceAllocation::new().with_vertex(stb.resource("uP1"));
    let implementation = implement_default(&stb.spec, &allocation).unwrap();
    let game_mode = implementation
        .modes
        .iter()
        .find(|m| {
            m.mode
                .problem
                .iter()
                .any(|(_, c)| c == stb.cluster("gamma_G"))
        })
        .expect("game feasible on uP1");
    let schedule = schedule_mode(
        &stb.spec,
        &game_mode.mode.problem,
        &game_mode.binding,
        CommDelay::Zero,
    )
    .unwrap();
    assert_eq!(schedule.makespan(), Time::from_ns(170));
    assert!(schedule.meets_periods(&stb.spec));
}

/// Communication delays can break a period that holds under the paper's
/// zero-delay assumption: the offloaded game (core on the FPGA) crosses
/// the bus twice per frame.
#[test]
fn comm_delays_tighten_the_verdict() {
    let stb = set_top_box();
    let allocation = ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("C1"))
        .with_cluster(stb.design("G1"));
    let implementation = implement_default(&stb.spec, &allocation).unwrap();
    let game_mode = implementation
        .modes
        .iter()
        .find(|m| {
            m.mode
                .problem
                .iter()
                .any(|(_, c)| c == stb.cluster("gamma_G1"))
        })
        .expect("offloaded game feasible");
    // Zero delay: 27 (ctrl) + 20 (core on FPGA) + 90 (accel) serialized
    // over two resources -> well within 240.
    let free = schedule_mode(
        &stb.spec,
        &game_mode.mode.problem,
        &game_mode.binding,
        CommDelay::Zero,
    )
    .unwrap();
    assert!(free.meets_periods(&stb.spec));
    // A 60 ns bus delay per hop pushes the accelerator past its period.
    let slow = schedule_mode(
        &stb.spec,
        &game_mode.mode.problem,
        &game_mode.binding,
        CommDelay::Uniform(Time::from_ns(60)),
    )
    .unwrap();
    assert!(slow.makespan() > free.makespan());
    assert!(!slow.meets_periods(&stb.spec));
}

/// End-to-end adaptive scenario on the $290 platform: a zapping session
/// with reconfiguration accounting.
#[test]
fn adaptive_zapping_session() {
    let stb = set_top_box();
    let allocation = ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("C1"))
        .with_cluster(stb.design("D3"))
        .with_cluster(stb.design("U2"))
        .with_cluster(stb.design("G1"));
    let implementation = implement_default(&stb.spec, &allocation).unwrap();
    assert_eq!(implementation.flexibility, 5);

    let tv = |d: &str, u: &str| {
        Selection::new()
            .with(stb.interfaces["I_app"], stb.cluster("gamma_D"))
            .with(stb.interfaces["I_D"], stb.cluster(d))
            .with(stb.interfaces["I_U"], stb.cluster(u))
    };
    let game = Selection::new()
        .with(stb.interfaces["I_app"], stb.cluster("gamma_G"))
        .with(stb.interfaces["I_G"], stb.cluster("gamma_G1"));
    let browser = Selection::new().with(stb.interfaces["I_app"], stb.cluster("gamma_I"));

    let mut system = AdaptiveSystem::new(
        &stb.spec,
        &implementation,
        ReconfigCost::Uniform(Time::from_ns(500)),
    );
    system
        .run_trace(&[
            tv("gamma_D1", "gamma_U1"),
            tv("gamma_D3", "gamma_U1"),
            game.clone(),
            tv("gamma_D1", "gamma_U2"),
            browser,
        ])
        .unwrap();
    let stats = system.stats();
    assert_eq!(stats.switches, 5);
    // D3, G1 and U2 each require a swap; D1xU1 and the browser run on the
    // processor without touching the device.
    assert_eq!(stats.reconfigurations, 3);
    assert_eq!(stats.total_reconfig_time, Time::from_ns(1500));

    // Game class 3 was never paid for: rejected.
    let g3 = Selection::new()
        .with(stb.interfaces["I_app"], stb.cluster("gamma_G"))
        .with(stb.interfaces["I_G"], stb.cluster("gamma_G3"));
    assert!(system.switch_to(&g3).is_err());
    assert_eq!(system.stats().rejected, 1);
}

/// The richest platform ($430) serves every behavior in the family with
/// no rejections.
#[test]
fn full_platform_serves_all_behaviors() {
    let stb = set_top_box();
    let allocation = ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("A1"))
        .with_vertex(stb.resource("C1"))
        .with_vertex(stb.resource("C2"))
        .with_cluster(stb.design("D3"));
    let implementation = implement_default(&stb.spec, &allocation).unwrap();
    assert_eq!(implementation.flexibility, 8);
    let mut system = AdaptiveSystem::new(&stb.spec, &implementation, ReconfigCost::Free);
    // Every elementary behavior of the family.
    let mut requests = vec![Selection::new().with(stb.interfaces["I_app"], stb.cluster("gamma_I"))];
    for g in ["gamma_G1", "gamma_G2", "gamma_G3"] {
        requests.push(
            Selection::new()
                .with(stb.interfaces["I_app"], stb.cluster("gamma_G"))
                .with(stb.interfaces["I_G"], stb.cluster(g)),
        );
    }
    for d in ["gamma_D1", "gamma_D2", "gamma_D3"] {
        for u in ["gamma_U1", "gamma_U2"] {
            requests.push(
                Selection::new()
                    .with(stb.interfaces["I_app"], stb.cluster("gamma_D"))
                    .with(stb.interfaces["I_D"], stb.cluster(d))
                    .with(stb.interfaces["I_U"], stb.cluster(u)),
            );
        }
    }
    let mut served = 0;
    let mut rejected = Vec::new();
    for request in &requests {
        match system.switch_to(request) {
            Ok(_) => served += 1,
            Err(_) => rejected.push(request.clone()),
        }
    }
    // Flexibility 8 means every *cluster* is activatable at some time —
    // not that every combination is: D3 (FPGA-only) with U2 (ASIC-only
    // here) is unroutable because no bus joins FPGA and A1, exactly the
    // Fig. 2 infeasibility argument. All nine other behaviors are served.
    assert_eq!(served, 9);
    assert_eq!(rejected.len(), 1);
    let d3u2 = Selection::new()
        .with(stb.interfaces["I_app"], stb.cluster("gamma_D"))
        .with(stb.interfaces["I_D"], stb.cluster("gamma_D3"))
        .with(stb.interfaces["I_U"], stb.cluster("gamma_U2"));
    assert_eq!(rejected[0], d3u2);
}
