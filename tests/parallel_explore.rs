//! Parallel EXPLORE determinism: for every bundled model and every
//! option variant, the speculative-chunk engine must reproduce the
//! sequential front and pruning statistics **exactly** — only the
//! speculation accounting (`chunks_speculated`, `speculative_waste`)
//! may depend on the thread count, because it measures scheduling
//! overhead, not search decisions.

use flexplore::{
    explore, explore_resilient, explore_weighted, set_top_box, synthetic_spec, tv_decoder,
    AllocationOptions, ExploreOptions, ExploreStats, FlexibilityWeights, SyntheticConfig,
};

/// The base options with `threads` applied to both the candidate scan and
/// the EXPLORE driver.
fn threaded(base: &ExploreOptions, threads: usize) -> ExploreOptions {
    ExploreOptions {
        allocation: AllocationOptions {
            threads,
            ..base.allocation
        },
        ..base.clone()
    }
    .with_threads(threads)
}

/// Every counter that reflects a search decision must match; the two
/// speculation counters are excluded by design.
fn assert_pruning_stats_match(sequential: &ExploreStats, parallel: &ExploreStats) {
    assert_eq!(sequential.vertex_set_size, parallel.vertex_set_size);
    assert_eq!(sequential.allocations, parallel.allocations);
    assert_eq!(sequential.estimate_skipped, parallel.estimate_skipped);
    assert_eq!(sequential.implement_attempts, parallel.implement_attempts);
    assert_eq!(sequential.feasible, parallel.feasible);
    assert_eq!(sequential.pareto_points, parallel.pareto_points);
}

fn option_variants() -> Vec<(&'static str, ExploreOptions)> {
    vec![
        ("paper", ExploreOptions::paper()),
        (
            "no flexibility pruning",
            ExploreOptions {
                flexibility_pruning: false,
                ..ExploreOptions::paper()
            },
        ),
        (
            "no structural pruning",
            ExploreOptions {
                allocation: AllocationOptions {
                    prune_useless_buses: false,
                    prune_unusable: false,
                    ..AllocationOptions::default()
                },
                ..ExploreOptions::paper()
            },
        ),
        ("exhaustive", ExploreOptions::exhaustive()),
    ]
}

#[test]
fn tv_decoder_matches_for_every_option_variant_and_thread_count() {
    let tv = tv_decoder();
    for (label, options) in option_variants() {
        let sequential = explore(&tv.spec, &options).unwrap();
        for threads in 1..=8 {
            let parallel = explore(&tv.spec, &threaded(&options, threads)).unwrap();
            assert!(
                sequential.front.same_objectives(&parallel.front),
                "front diverged: {label}, {threads} threads"
            );
            assert_pruning_stats_match(&sequential.stats, &parallel.stats);
        }
    }
}

#[test]
fn set_top_box_front_and_stats_are_thread_invariant() {
    let stb = set_top_box();
    let sequential = explore(&stb.spec, &ExploreOptions::paper()).unwrap();
    for threads in [2, 5, 8] {
        let parallel = explore(&stb.spec, &threaded(&ExploreOptions::paper(), threads)).unwrap();
        assert!(sequential.front.same_objectives(&parallel.front));
        assert_pruning_stats_match(&sequential.stats, &parallel.stats);
        // The engine really speculated (the case study has enough
        // candidates to fill chunks) and still changed nothing.
        assert!(parallel.stats.chunks_speculated > 0);
        // Even the realizing allocations match, point by point.
        for (s, p) in sequential.front.iter().zip(parallel.front.iter()) {
            assert_eq!(
                s.implementation.as_ref().unwrap().allocation,
                p.implementation.as_ref().unwrap().allocation
            );
        }
    }
}

#[test]
fn seeded_synthetic_models_are_thread_invariant() {
    for seed in [1, 7, 23] {
        let spec = synthetic_spec(&SyntheticConfig::medium(seed));
        let sequential = explore(&spec, &ExploreOptions::paper()).unwrap();
        for threads in [2, 8] {
            let parallel = explore(&spec, &threaded(&ExploreOptions::paper(), threads)).unwrap();
            assert!(
                sequential.front.same_objectives(&parallel.front),
                "front diverged: seed {seed}, {threads} threads"
            );
            assert_pruning_stats_match(&sequential.stats, &parallel.stats);
        }
    }
}

#[test]
fn weighted_exploration_is_thread_invariant() {
    let stb = set_top_box();
    let weights = FlexibilityWeights::new();
    let sequential = explore_weighted(&stb.spec, &weights, &ExploreOptions::paper()).unwrap();
    for threads in [2, 8] {
        let parallel = explore_weighted(
            &stb.spec,
            &weights,
            &threaded(&ExploreOptions::paper(), threads),
        )
        .unwrap();
        assert_eq!(sequential.implement_attempts, parallel.implement_attempts);
        assert_eq!(sequential.front.len(), parallel.front.len());
        for (s, p) in sequential.front.iter().zip(parallel.front.iter()) {
            assert_eq!(s.cost, p.cost);
            assert!((s.weighted_flexibility - p.weighted_flexibility).abs() < 1e-12);
            assert_eq!(s.implementation.allocation, p.implementation.allocation);
        }
    }
}

#[test]
fn resilient_exploration_is_thread_invariant() {
    let tv = tv_decoder();
    let sequential = explore_resilient(&tv.spec, 1, &ExploreOptions::paper()).unwrap();
    assert!(!sequential.is_empty());
    for threads in [2, 4, 8] {
        let parallel =
            explore_resilient(&tv.spec, 1, &threaded(&ExploreOptions::paper(), threads)).unwrap();
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(
                (s.cost, s.flexibility, s.resilience),
                (p.cost, p.flexibility, p.resilience)
            );
            assert_eq!(s.implementation.allocation, p.implementation.allocation);
        }
    }
}
