//! Integration tests for the paper's worked examples (E1–E3 in DESIGN.md):
//! Equation (1), the Fig. 2 binding-infeasibility example, and the Fig. 3
//! flexibility computation.

use flexplore::flex::{flexibility, flexibility_def4_raw, max_flexibility};
use flexplore::{possible_resource_allocations, set_top_box, tv_decoder, AllocationOptions, Cost};
use std::collections::BTreeSet;

/// E1 — Equation (1): the leaves of the Fig. 1 decoder are the two
/// top-level processes plus the five refinement processes.
#[test]
fn e1_equation_1_leaf_set() {
    let tv = tv_decoder();
    let g = tv.spec.problem().graph();
    let leaves: BTreeSet<&str> = g.leaves().map(|v| g.vertex_name(v)).collect();
    assert_eq!(
        leaves,
        BTreeSet::from(["P_A", "P_C", "P_D1", "P_D2", "P_D3", "P_U1", "P_U2"]),
    );
    // The per-cluster variant: V_l(gamma_D1) = {P_D1}.
    let d1 = tv.cluster("gamma_D1");
    let cluster_leaves = g.leaves_of_cluster(d1);
    assert_eq!(cluster_leaves.len(), 1);
    assert_eq!(g.vertex_name(cluster_leaves[0]), "P_D1");
}

/// E2 — Fig. 2: the possible-allocation set starts with the bare µP, every
/// candidate contains the µP, and candidates are cost-ordered.
#[test]
fn e2_fig2_possible_allocations() {
    let tv = tv_decoder();
    let (cands, stats) =
        possible_resource_allocations(&tv.spec, &AllocationOptions::default()).unwrap();
    assert!(stats.kept > 0);
    assert_eq!(cands[0].cost, Cost::new(100)); // {µP}
    for w in cands.windows(2) {
        assert!(w[0].cost <= w[1].cost, "candidates must be cost-sorted");
    }
    let up = tv.resource("uP");
    assert!(cands.iter().all(|c| c.allocation.vertices.contains(&up)));
    // The µP alone implements D1 x U1 only: estimated flexibility
    // 1 + 1 - 1 = 1 over the two interfaces.
    assert_eq!(cands[0].estimate.value, 1);
}

/// E2 — Fig. 2's infeasibility argument: without a bus between ASIC and
/// FPGA, a decryption on the ASIC cannot feed an uncompression on the
/// FPGA. (The detailed rule-level test lives in the models crate; here we
/// check the exploration never emits such a mode.)
#[test]
fn e2_no_mode_routes_between_asic_and_fpga() {
    use flexplore::explore;
    let tv = tv_decoder();
    let result = explore(&tv.spec, &flexplore::ExploreOptions::paper()).unwrap();
    let asic = tv.resource("A");
    let fpga_designs: BTreeSet<_> = ["D3", "U2"].iter().map(|n| tv.resource(n)).collect();
    for point in &result.front {
        let implementation = point.implementation.as_ref().unwrap();
        for mode in &implementation.modes {
            // If a decryption runs on the ASIC, the uncompression must not
            // sit on an FPGA design (no route exists).
            let d_on_asic = mode.binding.iter().any(|(p, m)| {
                tv.spec.problem().process_name(p).starts_with("P_D")
                    && tv.spec.mapping(m).resource == asic
            });
            if d_on_asic {
                let u_on_fpga = mode.binding.iter().any(|(p, m)| {
                    tv.spec.problem().process_name(p).starts_with("P_U")
                        && fpga_designs.contains(&tv.spec.mapping(m).resource)
                });
                assert!(!u_on_fpga, "unroutable ASIC->FPGA mode emitted");
            }
        }
    }
}

/// E3 — Fig. 3: maximal flexibility 8; without the game cluster 5; the
/// literal Definition 4 formula agrees on these consistent sets.
#[test]
fn e3_fig3_flexibility_values() {
    let stb = set_top_box();
    let g = stb.spec.problem().graph();
    assert_eq!(max_flexibility(g), 8);
    let game = stb.cluster("gamma_G");
    assert_eq!(flexibility(g, |c| c != game), 5);
    assert_eq!(flexibility_def4_raw(g, |c| c != game), 5);
    assert_eq!(flexibility_def4_raw(g, |_| true), 8);
}

/// E3 — the expanded flexibility equation of Section 3: dropping
/// individual leaf clusters subtracts exactly 1 while the structure stays
/// consistent.
#[test]
fn e3_leaf_cluster_contributions() {
    let stb = set_top_box();
    let g = stb.spec.problem().graph();
    for name in ["gamma_G2", "gamma_G3", "gamma_D2", "gamma_D3", "gamma_U2"] {
        let dropped = stb.cluster(name);
        assert_eq!(
            flexibility(g, |c| c != dropped),
            7,
            "dropping {name} must cost exactly 1"
        );
    }
    // Dropping every alternative of an interface kills the whole
    // application cluster: without gamma_U1 and gamma_U2 the TV decoder
    // cannot run at all, losing its full contribution of 4.
    let u1 = stb.cluster("gamma_U1");
    let u2 = stb.cluster("gamma_U2");
    assert_eq!(flexibility(g, |c| c != u1 && c != u2), 4);
}

/// E3 — the flexibility of the TV-decoder subgraph alone is 4
/// (3 decryptions + 2 uncompressions − 1).
#[test]
fn e3_tv_decoder_flexibility() {
    let tv = tv_decoder();
    assert_eq!(max_flexibility(tv.spec.problem().graph()), 4);
}
