//! Work-stealing scheduler and sharded-memo property suite.
//!
//! The deterministic work-stealing fan-out (DESIGN.md §16) promises that
//! scheduling — which worker runs which subtree, in which interleaving,
//! woken in whatever order — never changes a byte of the exploration
//! output. These tests hammer that promise from three directions: the
//! sharded estimate memo must linearize to the sequential memo's
//! contents under concurrent use, cross-worker memo hits must never
//! change emitted estimates or any deterministic counter, and the full
//! pipeline must be byte-identical across thread counts on every bundled
//! and generated model, including under the `FLEXPLORE_TEST_STEAL_JITTER`
//! wake-order shuffle the CI scheduler-stress job uses.

use flexplore::explore_crate::{possible_resource_allocations_obs, ShardedMemo};
use flexplore::models::{
    automotive_spec, baseband_spec, cloud_fpga_spec, dual_slot_fpga, AutomotiveConfig,
    BasebandConfig, CloudFpgaConfig,
};
use flexplore::{
    explore_with_obs, set_top_box, synthetic_spec, tv_decoder, AllocationOptions, CompiledSpec,
    ExploreOptions, ObsSink, SpecificationGraph, SyntheticConfig, UnitMask,
};
use std::collections::HashMap;

/// Every bundled model plus one seeded instance of each generator family
/// — the full zoo the steal-order invariance must hold on.
fn all_models() -> Vec<(&'static str, SpecificationGraph)> {
    vec![
        ("set-top-box", set_top_box().spec),
        ("tv-decoder", tv_decoder().spec),
        ("dual-slot-fpga", dual_slot_fpga().spec),
        (
            "synthetic-small",
            synthetic_spec(&SyntheticConfig::small(7)),
        ),
        (
            "synthetic-medium",
            synthetic_spec(&SyntheticConfig::medium(11)),
        ),
        (
            "synthetic-large",
            synthetic_spec(&SyntheticConfig::large(11)),
        ),
        ("synthetic-wide", synthetic_spec(&SyntheticConfig::wide(13))),
        ("automotive", automotive_spec(&AutomotiveConfig::small(5))),
        ("baseband", baseband_spec(&BasebandConfig::small(5))),
        ("cloud-fpga", cloud_fpga_spec(&CloudFpgaConfig::small(5))),
    ]
}

fn threaded(threads: usize) -> ExploreOptions {
    ExploreOptions {
        allocation: AllocationOptions {
            threads,
            ..AllocationOptions::default()
        },
        ..ExploreOptions::paper()
    }
    .with_threads(threads)
}

/// Front + deterministic stats + deterministic obs counters, as one
/// comparable byte string.
fn fingerprint(name: &str, spec: &SpecificationGraph, threads: usize) -> String {
    let sink = ObsSink::enabled();
    let result = explore_with_obs(spec, &threaded(threads), &sink).unwrap();
    let report = sink.report("steal-test", name, threads);
    format!(
        "{}|{:?}|{}",
        serde_json::to_string(&result.front).unwrap(),
        result.stats.allocations,
        report.counters_json().unwrap()
    )
}

fn mask_of(bits: &[usize]) -> UnitMask {
    let mut m = UnitMask::empty();
    for &b in bits {
        m.set(b);
    }
    m
}

/// Concurrent insert/get traffic on the sharded memo linearizes to the
/// contents a sequential reference memo computes: same keys, same values,
/// regardless of which of 8 racing threads inserted first.
#[test]
fn sharded_memo_linearizes_to_the_sequential_memo() {
    // The cached "estimate" is a pure function of the key, exactly like
    // the real flexibility estimate.
    let value_of = |k: usize| -> u64 { (k as u64).wrapping_mul(0x9e3779b97f4a7c15) };
    let keys: Vec<UnitMask> = (0..200)
        .map(|k| mask_of(&[k % 64, 64 + (k % 64), 128 + (k % 32), 192 + (k % 16)]))
        .collect();

    let mut sequential: HashMap<UnitMask, u64> = HashMap::new();
    for (k, key) in keys.iter().enumerate() {
        sequential.entry(*key).or_insert_with(|| value_of(k % 16));
    }

    let shared: ShardedMemo<u64> = ShardedMemo::new();
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let shared = &shared;
            let keys = &keys;
            scope.spawn(move || {
                // Every thread walks the keys from a different offset, so
                // insertion order differs per thread — contents must not.
                for i in 0..keys.len() {
                    let k = (i + t * 25) % keys.len();
                    if shared.get(&keys[k]).is_none() {
                        shared.insert_if_absent(keys[k], value_of(k % 16));
                    }
                }
            });
        }
    });
    assert_eq!(shared.snapshot(), sequential);
    assert_eq!(shared.len(), sequential.len());
}

/// A cross-worker memo hit returns byte-identical estimates: the
/// candidate list (estimates included) and every deterministic counter —
/// `memo_cross_hits` among them — agree between a sequential scan and a
/// heavily oversubscribed one.
#[test]
fn cross_worker_hits_never_change_emitted_estimates() {
    let stb = set_top_box().spec;
    let compiled = CompiledSpec::new(&stb);
    let options = |threads| AllocationOptions {
        threads,
        ..AllocationOptions::default()
    };
    let (seq_candidates, seq_stats) =
        possible_resource_allocations_obs(&compiled, &options(1), &ObsSink::disabled()).unwrap();
    assert!(
        seq_stats.memo_cross_hits > 0,
        "set-top-box must exercise cross-subtree memo reuse, stats: {seq_stats:?}"
    );
    for threads in [2, 8] {
        let (par_candidates, par_stats) =
            possible_resource_allocations_obs(&compiled, &options(threads), &ObsSink::disabled())
                .unwrap();
        assert_eq!(
            serde_json::to_string(&seq_candidates).unwrap(),
            serde_json::to_string(&par_candidates).unwrap(),
            "candidates (estimates included) diverged at {threads} threads"
        );
        assert_eq!(
            seq_stats, par_stats,
            "allocation stats diverged at {threads} threads"
        );
    }
}

/// Full-pipeline steal-order invariance: front, search counters and obs
/// counters are byte-identical at 1/2/4/8 threads on every bundled and
/// generated model.
#[test]
fn steal_order_is_invariant_on_every_model() {
    for (name, spec) in all_models() {
        let baseline = fingerprint(name, &spec, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                baseline,
                fingerprint(name, &spec, threads),
                "{name}: output diverged at {threads} threads"
            );
        }
    }
}

/// Worker wake order must not matter: under several
/// `FLEXPLORE_TEST_STEAL_JITTER` seeds (each delaying every worker's
/// first pull by a different pseudo-random amount, maximizing steal
/// shuffle), the oversubscribed run still reproduces the unjittered
/// sequential bytes.
#[test]
fn wake_order_jitter_never_changes_output() {
    let models = [
        ("set-top-box", set_top_box().spec),
        ("synthetic-wide", synthetic_spec(&SyntheticConfig::wide(13))),
    ];
    let baselines: Vec<String> = models
        .iter()
        .map(|(name, spec)| fingerprint(name, spec, 1))
        .collect();
    for seed in ["7", "1234"] {
        // Safe even though tests share the process environment: the knob
        // only perturbs worker wake timing, never output — which is the
        // very property under test.
        std::env::set_var("FLEXPLORE_TEST_STEAL_JITTER", seed);
        for ((name, spec), baseline) in models.iter().zip(&baselines) {
            assert_eq!(
                baseline,
                &fingerprint(name, spec, 8),
                "{name}: output diverged under jitter seed {seed}"
            );
        }
        std::env::remove_var("FLEXPLORE_TEST_STEAL_JITTER");
    }
}
