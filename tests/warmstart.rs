//! Warm-start equivalence: an exploration warm-started from a cached
//! prior run must produce a front and deterministic counters that are
//! byte-identical to a cold run on the same (edited) specification, at
//! every thread count — warmth may only change wall-clock and the warm
//! bookkeeping fields, never results. Cache corruption degrades to a
//! cold run with a warning, never an error.

use flexplore::explore_crate::{explore_compiled_warm, CacheEntry};
use flexplore::models::{spec_from_json, spec_to_json};
use flexplore::spec::fingerprint;
use flexplore::{
    automotive_spec, baseband_spec, cloud_fpga_spec, dual_slot_fpga, explore_with_obs, set_top_box,
    synthetic_spec, tv_decoder, AllocationOptions, AutomotiveConfig, BasebandConfig,
    CloudFpgaConfig, CompiledSpec, ExploreCache, ExploreOptions, ExploreResult, ExploreStats,
    ObsSink, SpecificationGraph, SyntheticConfig, WarmMode,
};
use flexplore_fuzz::{generate, DomainProfile};

fn wide() -> SpecificationGraph {
    synthetic_spec(&SyntheticConfig::wide(13))
}

/// Every bundled model plus a seeded sample of every generator family —
/// the population the byte-equivalence property is stated over.
fn all_models() -> Vec<(String, SpecificationGraph)> {
    let mut models = vec![
        ("set_top_box".to_owned(), set_top_box().spec),
        ("tv_decoder".to_owned(), tv_decoder().spec),
        ("dual_slot_fpga".to_owned(), dual_slot_fpga().spec),
        (
            "synthetic-small".to_owned(),
            synthetic_spec(&SyntheticConfig::small(7)),
        ),
        ("synthetic-wide".to_owned(), wide()),
        (
            "automotive-default".to_owned(),
            automotive_spec(&AutomotiveConfig::default()),
        ),
        (
            "baseband-default".to_owned(),
            baseband_spec(&BasebandConfig::default()),
        ),
        (
            "cloud-fpga-default".to_owned(),
            cloud_fpga_spec(&CloudFpgaConfig::default()),
        ),
    ];
    for profile in DomainProfile::all() {
        for seed in 0..2 {
            models.push((format!("{profile}-seed{seed}"), generate(profile, seed)));
        }
    }
    models
}

fn threaded(threads: usize) -> ExploreOptions {
    ExploreOptions {
        allocation: AllocationOptions {
            threads,
            ..AllocationOptions::default()
        },
        ..ExploreOptions::paper()
    }
}

/// Bumps the `index`-th `"latency"` value in the spec's JSON form by one
/// nanosecond — a one-unit, binding-layer edit, exactly what an engineer
/// tweaking a model between watch cycles produces.
fn bump_numeric_field(spec: &SpecificationGraph, field: &str, index: usize) -> SpecificationGraph {
    try_bump_numeric_field(spec, field, index).expect("enough fields to edit")
}

/// Fallible variant: `None` when the spec lacks the field or the bumped
/// JSON no longer validates.
fn try_bump_numeric_field(
    spec: &SpecificationGraph,
    field: &str,
    index: usize,
) -> Option<SpecificationGraph> {
    let json = spec_to_json(spec).unwrap();
    let needle = format!("\"{field}\"");
    let mut at = 0;
    for _ in 0..=index {
        let rel = json[at..].find(&needle)?;
        at += rel + needle.len();
    }
    let digits_at = at + json[at..].find(|c: char| c.is_ascii_digit())?;
    let digits_end = digits_at
        + json[digits_at..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(json.len() - digits_at);
    let value: u64 = json[digits_at..digits_end].parse().ok()?;
    let edited = format!("{}{}{}", &json[..digits_at], value + 1, &json[digits_end..]);
    spec_from_json(&edited).ok()
}

/// The stats a cold run would report: warm bookkeeping zeroed.
fn cold_view(mut stats: ExploreStats) -> ExploreStats {
    stats.allocations.warm_hits = 0;
    stats.allocations.warm_invalidated = 0;
    stats.allocations.delta_units = 0;
    stats
}

fn assert_matches_cold(warm: &ExploreResult, cold: &ExploreResult, context: &str) {
    assert_eq!(
        serde_json::to_string(&warm.front).unwrap(),
        serde_json::to_string(&cold.front).unwrap(),
        "front bytes diverged: {context}"
    );
    assert_eq!(
        cold_view(warm.stats),
        cold_view(cold.stats),
        "counters diverged: {context}"
    );
}

/// Cold-explores `base`, then warm-explores `edited` from the captured
/// entry and checks the result against a cold run on `edited`, for one
/// thread count.
fn check_equivalence(
    base: &SpecificationGraph,
    edited: &SpecificationGraph,
    expected_mode: WarmMode,
    threads: usize,
) {
    let mode = check_warm_equivalence(base, edited, threads, "");
    assert_eq!(
        mode, expected_mode,
        "unexpected warm level at {threads} thread(s)"
    );
}

/// Cold-explores `base`, warm-explores `edited` from the captured entry,
/// and checks the warm result against a cold run on `edited`. Returns the
/// warm level the delta admitted.
fn check_warm_equivalence(
    base: &SpecificationGraph,
    edited: &SpecificationGraph,
    threads: usize,
    name: &str,
) -> WarmMode {
    let options = threaded(threads);
    let obs = ObsSink::disabled();
    let base_compiled = CompiledSpec::with_activation_cache(base);
    let prior = explore_compiled_warm(&base_compiled, &options, None, &obs)
        .unwrap()
        .entry;
    let edited_compiled = CompiledSpec::with_activation_cache(edited);
    let warm = explore_compiled_warm(&edited_compiled, &options, Some(&prior), &obs).unwrap();
    let cold = explore_compiled_warm(&edited_compiled, &options, None, &obs).unwrap();
    assert_eq!(cold.summary.mode, WarmMode::Cold);
    assert_matches_cold(
        &warm.result,
        &cold.result,
        &format!("{name} {} at {threads} thread(s)", warm.summary.mode),
    );
    warm.summary.mode
}

#[test]
fn every_bundled_and_generated_model_warm_explores_byte_identically() {
    // The property the whole layer rests on, stated over the full model
    // population: whatever warmth a one-field edit admits, the warm run
    // is byte-equivalent to a cold run on the edited spec at 1/4/8
    // threads. A latency edit must never fall below a replay (the
    // enumeration layer is untouched); a cost edit reseeds.
    for (name, base) in all_models() {
        for (field, floor) in [("latency", WarmMode::Replay), ("cost", WarmMode::Seeded)] {
            let Some(edited) = try_bump_numeric_field(&base, field, 0) else {
                continue;
            };
            for threads in [1, 4, 8] {
                let mode = check_warm_equivalence(&base, &edited, threads, &name);
                assert!(
                    mode <= floor,
                    "{name}: a one-{field} edit warmed at `{mode}`, expected `{floor}` or warmer"
                );
            }
        }
    }
}

#[test]
fn latency_edit_replays_byte_identically_at_every_thread_count() {
    let base = wide();
    let edited = bump_numeric_field(&base, "latency", 1);
    for threads in [1, 4, 8] {
        check_equivalence(&base, &edited, WarmMode::Replay, threads);
    }
}

#[test]
fn cost_edit_reseeds_byte_identically_at_every_thread_count() {
    let base = wide();
    let edited = bump_numeric_field(&base, "cost", 0);
    for threads in [1, 4, 8] {
        check_equivalence(&base, &edited, WarmMode::Seeded, threads);
    }
}

#[test]
fn unchanged_spec_is_an_exact_replay() {
    let base = wide();
    check_equivalence(&base, &base, WarmMode::Exact, 1);
}

#[test]
fn warm_obs_counters_match_cold_obs_counters() {
    // The obs counter section — what `BENCH_*.json` and the CI
    // determinism diffs consume — must not see warm bookkeeping.
    let base = wide();
    let edited = bump_numeric_field(&base, "latency", 1);
    let options = threaded(1);

    let cold_obs = ObsSink::enabled();
    explore_with_obs(&edited, &options, &cold_obs).unwrap();
    let cold_report = cold_obs.report("explore", "synthetic-wide", 1);

    let warm_obs = ObsSink::enabled();
    let base_compiled = CompiledSpec::with_activation_cache(&base);
    let prior = explore_compiled_warm(&base_compiled, &options, None, &ObsSink::disabled())
        .unwrap()
        .entry;
    let edited_compiled = CompiledSpec::with_activation_cache(&edited);
    let warm = explore_compiled_warm(&edited_compiled, &options, Some(&prior), &warm_obs).unwrap();
    assert_eq!(warm.summary.mode, WarmMode::Replay);
    let warm_report = warm_obs.report("explore", "synthetic-wide", 1);

    assert_eq!(
        warm_report.counters_json().unwrap(),
        cold_report.counters_json().unwrap()
    );
}

#[test]
fn disk_cache_warms_across_processes_and_survives_corruption() {
    let dir = std::env::temp_dir().join(format!("flexplore-warmstart-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ExploreCache::new(&dir);
    let options = threaded(1);
    let obs = ObsSink::disabled();

    let base = wide();
    let first = cache.explore(&base, &options, &obs).unwrap();
    assert_eq!(first.summary.mode, WarmMode::Cold);

    // One latency tweak: the persisted entry admits a replay.
    let edited = bump_numeric_field(&base, "latency", 1);
    let warm = cache.explore(&edited, &options, &obs).unwrap();
    assert_eq!(warm.summary.mode, WarmMode::Replay);
    let cold = explore_with_obs(&edited, &options, &obs).unwrap();
    assert_matches_cold(&warm.result, &cold, "disk replay");
    assert_eq!(
        warm.summary.fingerprint,
        fingerprint(&CompiledSpec::new(&edited))
    );

    // Corrupt every cache file: the next run degrades to cold with a
    // warning and heals the cache.
    for entry in std::fs::read_dir(&dir).unwrap() {
        std::fs::write(entry.unwrap().path(), "{ not json").unwrap();
    }
    let degraded = cache.explore(&edited, &options, &obs).unwrap();
    assert_eq!(degraded.summary.mode, WarmMode::Cold);
    assert!(
        degraded
            .summary
            .warnings
            .iter()
            .any(|w| w.contains("cache")),
        "corruption must be reported: {:?}",
        degraded.summary.warnings
    );
    assert_matches_cold(&degraded.result, &cold, "degraded rerun");
    let healed = cache.explore(&edited, &options, &obs).unwrap();
    assert_eq!(healed.summary.mode, WarmMode::Exact);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prior_entry_round_trips_through_the_facade_types() {
    // The facade re-exports are enough to drive the whole warm API.
    let base = wide();
    let options = ExploreOptions::paper();
    let compiled = CompiledSpec::with_activation_cache(&base);
    let outcome = explore_compiled_warm(&compiled, &options, None, &ObsSink::disabled()).unwrap();
    let entry: CacheEntry = outcome.entry;
    assert!(!entry.candidates.is_empty());
    assert_eq!(entry.front.objectives(), outcome.result.front.objectives());
}
