//! Cross-crate property tests: the system-level invariants of DESIGN.md,
//! checked on randomized synthetic specifications.

use flexplore::bind::{implement_default, mode_timing_accepts};
use flexplore::flex::estimate_flexibility;
use flexplore::{
    exhaustive_explore, explore, set_top_box, synthetic_spec, ExploreOptions, ResourceAllocation,
    SchedPolicy, SyntheticConfig,
};
use proptest::prelude::*;

fn small_config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (
        0u64..200,
        1usize..3,
        1usize..3,
        1usize..3,
        1usize..3,
        0usize..2,
        0usize..3,
    )
        .prop_map(
            |(seed, apps, stages, alts, cpus, asics, designs)| SyntheticConfig {
                seed,
                applications: apps,
                interfaces_per_app: stages,
                alternatives: alts,
                processors: cpus,
                asics,
                fpga_designs: designs,
                constrained_fraction: 0.5,
                dedicated_tasks: 0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's central correctness claim: EXPLORE finds exactly the
    /// Pareto front that exhaustive search finds.
    #[test]
    fn explore_equals_exhaustive(config in small_config_strategy()) {
        let spec = synthetic_spec(&config);
        let fast = explore(&spec, &ExploreOptions::paper()).unwrap();
        let slow = exhaustive_explore(&spec).unwrap();
        prop_assert!(
            fast.front.same_objectives(&slow.front),
            "EXPLORE {:?} != exhaustive {:?}",
            fast.front.objectives(),
            slow.front.objectives()
        );
    }

    /// Every mode of every implementation on the front re-verifies against
    /// the declarative binding rules and the timing policy.
    #[test]
    fn all_front_modes_reverify(config in small_config_strategy()) {
        let spec = synthetic_spec(&config);
        let result = explore(&spec, &ExploreOptions::paper()).unwrap();
        for point in &result.front {
            let implementation = point.implementation.as_ref().unwrap();
            let allocated = implementation
                .allocation
                .available_vertices(spec.architecture());
            for mode in &implementation.modes {
                prop_assert!(spec
                    .check_binding(&mode.mode, &allocated, &mode.binding)
                    .is_ok());
                prop_assert!(mode_timing_accepts(
                    &spec,
                    &mode.mode.problem,
                    &mode.binding,
                    SchedPolicy::PaperLimit69
                ));
            }
        }
    }

    /// The flexibility estimate is a sound upper bound: the implemented
    /// flexibility never exceeds it.
    #[test]
    fn estimate_is_upper_bound(config in small_config_strategy()) {
        let spec = synthetic_spec(&config);
        let result = explore(&spec, &ExploreOptions::paper()).unwrap();
        for point in &result.front {
            let implementation = point.implementation.as_ref().unwrap();
            let estimate = estimate_flexibility(&spec, &implementation.allocation);
            prop_assert!(implementation.flexibility <= estimate.value);
        }
    }

    /// Fronts are sorted by cost with strictly increasing flexibility and
    /// mutually non-dominated.
    #[test]
    fn fronts_are_well_formed(config in small_config_strategy()) {
        let spec = synthetic_spec(&config);
        let result = explore(&spec, &ExploreOptions::paper()).unwrap();
        let objectives = result.front.objectives();
        for w in objectives.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        for a in result.front.iter() {
            for b in result.front.iter() {
                if !std::ptr::eq(a, b) {
                    prop_assert!(!a.dominates(b));
                }
            }
        }
    }
}

/// Monotonicity on the case study: growing an allocation never decreases
/// the implemented flexibility.
#[test]
fn allocation_growth_is_monotone() {
    let stb = set_top_box();
    let steps = [
        ResourceAllocation::new().with_vertex(stb.resource("uP2")),
        ResourceAllocation::new()
            .with_vertex(stb.resource("uP2"))
            .with_vertex(stb.resource("C1"))
            .with_cluster(stb.design("U2")),
        ResourceAllocation::new()
            .with_vertex(stb.resource("uP2"))
            .with_vertex(stb.resource("C1"))
            .with_cluster(stb.design("U2"))
            .with_cluster(stb.design("G1")),
        ResourceAllocation::new()
            .with_vertex(stb.resource("uP2"))
            .with_vertex(stb.resource("C1"))
            .with_vertex(stb.resource("C2"))
            .with_vertex(stb.resource("A1"))
            .with_cluster(stb.design("U2"))
            .with_cluster(stb.design("G1"))
            .with_cluster(stb.design("D3")),
    ];
    let mut last = 0;
    for allocation in &steps {
        let implementation = implement_default(&stb.spec, allocation).expect("all steps feasible");
        assert!(
            implementation.flexibility >= last,
            "flexibility dropped from {last} to {} at [{}]",
            implementation.flexibility,
            allocation.display_names(stb.spec.architecture())
        );
        last = implementation.flexibility;
    }
    assert_eq!(last, 8, "the final step implements everything");
}

/// Serde round-trip of a complete exploration result.
#[test]
fn exploration_results_serialize() {
    let spec = synthetic_spec(&SyntheticConfig::small(5));
    let result = explore(&spec, &ExploreOptions::paper()).unwrap();
    let json = serde_json::to_string(&result).unwrap();
    let back: flexplore::ExploreResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.front.objectives(), result.front.objectives());
    assert_eq!(back.stats, result.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The single-point queries agree with the full front on random specs.
    #[test]
    fn queries_agree_with_front(config in small_config_strategy()) {
        use flexplore::{max_flexibility_under_budget, min_cost_for_flexibility};
        let spec = synthetic_spec(&config);
        let options = ExploreOptions::paper();
        let front = explore(&spec, &options).unwrap().front;
        for point in &front {
            let q = min_cost_for_flexibility(&spec, point.flexibility, &options)
                .unwrap()
                .expect("front flexibility is implementable");
            prop_assert_eq!(q.cost, point.cost);
            let b = max_flexibility_under_budget(&spec, point.cost, &options)
                .unwrap()
                .expect("front cost affords something");
            prop_assert_eq!(b.flexibility, point.flexibility);
        }
        // One past the best flexibility is unattainable.
        let best = front.best_flexibility();
        prop_assert!(min_cost_for_flexibility(&spec, best + 1, &options)
            .unwrap()
            .is_none());
    }

    /// Upgrade exploration from any front allocation never decreases
    /// flexibility and always contains the base.
    #[test]
    fn upgrades_contain_base_and_do_not_regress(config in small_config_strategy()) {
        use flexplore::explore_upgrades;
        let spec = synthetic_spec(&config);
        let options = ExploreOptions::paper();
        let front = explore(&spec, &options).unwrap().front;
        let Some(first) = front.points().first() else { return Ok(()); };
        let base = first.implementation.as_ref().unwrap().allocation.clone();
        let upgrades = explore_upgrades(&spec, &base, &options).unwrap();
        prop_assert!(!upgrades.front.is_empty());
        for point in &upgrades.front {
            let implementation = point.implementation.as_ref().unwrap();
            prop_assert!(implementation.allocation.contains(&base));
            prop_assert!(point.flexibility >= first.flexibility);
        }
    }

    /// Every mode of every front implementation admits a valid static
    /// schedule: entries respect precedence, resources never overlap, and
    /// constrained sinks meet their periods.
    #[test]
    fn front_modes_schedule_consistently(config in small_config_strategy()) {
        use flexplore::schedule::{schedule_mode, CommDelay};
        let spec = synthetic_spec(&config);
        let result = explore(&spec, &ExploreOptions::paper()).unwrap();
        for point in &result.front {
            let implementation = point.implementation.as_ref().unwrap();
            for mode in &implementation.modes {
                let schedule =
                    schedule_mode(&spec, &mode.mode.problem, &mode.binding, CommDelay::Zero)
                        .unwrap();
                let flat = spec.problem().flatten(&mode.mode.problem).unwrap();
                for e in &flat.edges {
                    prop_assert!(
                        schedule.entry(e.from).unwrap().finish
                            <= schedule.entry(e.to).unwrap().start
                    );
                }
                let mut per_resource: std::collections::BTreeMap<_, Vec<_>> =
                    std::collections::BTreeMap::new();
                for entry in schedule.entries() {
                    per_resource.entry(entry.resource).or_default().push(entry);
                }
                for entries in per_resource.values() {
                    for w in entries.windows(2) {
                        prop_assert!(w[0].finish <= w[1].start);
                    }
                }
            }
        }
    }
}
