//! Acceptance tests of the fault-tolerant runtime (ISSUE 1 tentpole):
//! a permanent resource failure must trigger a recorded degraded switch to
//! a surviving mode, and the k-resilient flexibility of the Set-Top box
//! case study must be strictly below its fault-free flexibility.

use flexplore::adaptive::{DegradeOutcome, FaultTimelineEvent};
use flexplore::bind::ImplementOptions;
use flexplore::{
    implement_default, k_resilient_flexibility, remaining_flexibility, run_with_faults,
    set_top_box, AdaptiveSystem, DegradationPolicy, FaultKind, FaultPlan, FaultScenario,
    Implementation, ReconfigCost, Selection, SetTopBox, Time,
};
use std::collections::BTreeSet;

/// The $290 platform: µP2 + C1 + FPGA designs D3/U2/G1.
fn platform() -> (SetTopBox, Implementation) {
    let stb = set_top_box();
    let allocation = flexplore::ResourceAllocation::new()
        .with_vertex(stb.resource("uP2"))
        .with_vertex(stb.resource("C1"))
        .with_cluster(stb.design("D3"))
        .with_cluster(stb.design("U2"))
        .with_cluster(stb.design("G1"));
    let implementation = implement_default(&stb.spec, &allocation).expect("feasible");
    (stb, implementation)
}

fn watch_tv_d3(stb: &SetTopBox) -> Selection {
    Selection::new()
        .with(stb.interfaces["I_app"], stb.cluster("gamma_D"))
        .with(stb.interfaces["I_D"], stb.cluster("gamma_D3"))
        .with(stb.interfaces["I_U"], stb.cluster("gamma_U1"))
}

#[test]
fn permanent_failure_triggers_a_recorded_degraded_switch() {
    let (stb, implementation) = platform();
    let mut system = AdaptiveSystem::new(&stb.spec, &implementation, ReconfigCost::Free);
    system.switch_to(&watch_tv_d3(&stb)).unwrap();

    let outcome = system
        .fail_resource(
            Time::from_ns(10_000),
            stb.resource("D3"),
            FaultKind::Permanent,
        )
        .unwrap();
    assert_eq!(outcome, DegradeOutcome::Degraded);

    // The degraded switch is on the timeline and lands on a surviving
    // mode: same top-level behavior (TV), decoder alternative != D3, and
    // no process bound to the dead design.
    let switch = system
        .fault_timeline()
        .iter()
        .find_map(|e| match e {
            FaultTimelineEvent::DegradedSwitch { behavior, mode, .. } => {
                Some((behavior.clone(), mode.clone()))
            }
            _ => None,
        })
        .expect("a DegradedSwitch must be recorded");
    assert_eq!(
        switch.0.get(stb.interfaces["I_app"]),
        Some(stb.cluster("gamma_D"))
    );
    assert_ne!(
        switch.1.get(stb.interfaces["I_D"]),
        Some(stb.cluster("gamma_D3"))
    );
    let current = system.current_mode().expect("TV stays up");
    let dead = stb.resource("D3");
    for (_, mapping) in current.binding.iter() {
        assert_ne!(stb.spec.mapping(mapping).resource, dead);
    }
}

#[test]
fn one_resilient_flexibility_is_strictly_below_fault_free() {
    let (stb, implementation) = platform();
    let report =
        k_resilient_flexibility(&stb.spec, &implementation, 1, &ImplementOptions::default())
            .unwrap();
    assert_eq!(report.baseline, implementation.flexibility);
    assert!(
        report.resilient_flexibility < report.baseline,
        "a single-processor platform cannot guarantee its flexibility: \
         {} vs {}",
        report.resilient_flexibility,
        report.baseline
    );
    // And the worst case is consistent with a direct masking query.
    let dead: BTreeSet<_> = [stb.resource("uP2")].into_iter().collect();
    let without_processor = remaining_flexibility(
        &stb.spec,
        &implementation,
        &dead,
        &ImplementOptions::default(),
    )
    .unwrap();
    assert!(report.resilient_flexibility <= without_processor);
}

#[test]
fn scenario_runner_survives_a_design_loss_and_reports_the_decay() {
    let (stb, implementation) = platform();
    let trace = vec![watch_tv_d3(&stb), watch_tv_d3(&stb)];
    let scenario = FaultScenario {
        plan: FaultPlan::new().with_fault(
            Time::from_ns(500),
            stb.resource("D3"),
            FaultKind::Permanent,
        ),
        policy: DegradationPolicy::BestEffort,
        dwell: Time::from_ns(1_000),
    };
    let report = run_with_faults(
        &stb.spec,
        &implementation,
        ReconfigCost::Free,
        &trace,
        &scenario,
    )
    .unwrap();
    assert_eq!(report.stats.failures, 1);
    assert_eq!(report.stats.degraded_switches, 1);
    assert_eq!(report.stats.behaviors_lost, 0);
    // Masking the dead design costs exactly the D3 decoder alternative.
    assert!(report.surviving_flexibility < report.baseline_flexibility);
    assert!(report.surviving_flexibility > 0);
}
