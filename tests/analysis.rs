//! Integration tests of the static lattice analysis (DESIGN.md §15):
//! fact extraction at the subset-mask word boundaries and the full
//! 256-unit capacity, the analyzer over the bundled and generated model
//! families, analysis-on/off equivalence of the branch-and-bound
//! enumeration, the new pruning counters, and the doc-sync contract
//! tying every emitted diagnostic code to a DESIGN.md catalog row.

use flexplore::explore_crate::possible_resource_allocations_obs;
use flexplore::lint::{compute_facts, lint_spec_obs_with_capacity};
use flexplore::{
    analyze_spec, explore_with_obs, set_top_box, synthetic_spec, AllocationOptions, CompiledSpec,
    Enumerator, ExploreOptions, ObsSink, SpecificationGraph, SyntheticConfig,
};
use flexplore_fuzz::{generate, DomainProfile};
use std::path::Path;

/// A one-application synthetic model with `dedicated` dedicated tasks:
/// `dedicated + 2` allocatable units (the shared processor, one bus, and
/// one dedicated DSP per task), each DSP the sole cover of its task.
fn dedicated_spec(dedicated: usize) -> SpecificationGraph {
    synthetic_spec(&SyntheticConfig {
        seed: 5,
        applications: 1,
        interfaces_per_app: 1,
        alternatives: 2,
        processors: 1,
        asics: 0,
        fpga_designs: 0,
        constrained_fraction: 0.0,
        dedicated_tasks: dedicated,
    })
}

fn bnb_options(analysis: bool, threads: usize) -> AllocationOptions {
    AllocationOptions {
        enumerator: Enumerator::BranchAndBound,
        analysis,
        threads,
        max_units: 256,
        ..AllocationOptions::default()
    }
}

/// Enumerates with the analysis on and off and asserts the candidate
/// lists (order, costs, estimates) are byte-identical; returns the
/// (on, off) stats for counter assertions.
fn assert_on_off_equal(
    name: &str,
    spec: &SpecificationGraph,
    threads: usize,
) -> (
    flexplore::explore_crate::AllocationStats,
    flexplore::explore_crate::AllocationStats,
) {
    let compiled = CompiledSpec::new(spec);
    let (on_cands, on_stats) = possible_resource_allocations_obs(
        &compiled,
        &bnb_options(true, threads),
        &ObsSink::disabled(),
    )
    .unwrap();
    let (off_cands, off_stats) = possible_resource_allocations_obs(
        &compiled,
        &bnb_options(false, threads),
        &ObsSink::disabled(),
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string(&on_cands).unwrap(),
        serde_json::to_string(&off_cands).unwrap(),
        "{name}: candidates diverged between analysis on/off at {threads} threads"
    );
    assert_eq!(on_stats.kept, off_stats.kept, "{name}");
    assert_eq!(on_stats.subsets, off_stats.subsets, "{name}");
    // The per-subset counters saturate at u64::MAX from 64 units on; the
    // exact sum invariant only holds while they are exact.
    if on_stats.units < 64 {
        assert_eq!(
            on_stats.pruned_structurally + on_stats.infeasible + on_stats.kept,
            on_stats.subsets,
            "{name}: sum invariant broken with analysis on"
        );
    }
    (on_stats, off_stats)
}

/// The analyzer's facts straddle the one-word mask boundary (63/64/65
/// units) without wrapping: every dedicated DSP is proven mandatory and
/// the enumeration is byte-identical with the pruning on or off at
/// multiple thread counts.
#[test]
fn word_boundary_unit_counts_analyze_cleanly() {
    for (dedicated, expected_units) in [(61usize, 63usize), (62, 64), (63, 65)] {
        let spec = dedicated_spec(dedicated);
        assert_eq!(
            flexplore::explore_crate::allocatable_units(&spec).len(),
            expected_units
        );
        let analysis = analyze_spec(&spec);
        assert!(analysis.analyzed, "{expected_units} units");
        assert_eq!(analysis.facts.unit_count, expected_units);
        assert!(
            analysis.facts.mandatory.count_ones() as usize >= dedicated,
            "{expected_units} units: expected at least {dedicated} mandatory DSPs, got {}",
            analysis.facts.mandatory.count_ones()
        );
        assert!(analysis.report.has_code("F014"), "{expected_units} units");
        for threads in [1usize, 4] {
            let (on, _) = assert_on_off_equal("word-boundary", &spec, threads);
            assert!(
                on.analysis_mandatory_forced > 0,
                "{expected_units} units: mandatory pruning never fired"
            );
        }
    }
}

/// The analyzer and enumeration also work at exactly the 256-unit
/// capacity ceiling, and the `F013` capacity check is exact at both
/// boundaries: `units > capacity` fires, `units == capacity` does not.
#[test]
fn full_capacity_256_units_analyze_cleanly() {
    let spec = dedicated_spec(254);
    let units = flexplore::explore_crate::allocatable_units(&spec).len();
    assert_eq!(units, 256);

    // F013 thresholds, per enumerator capacity: branch-and-bound (256)
    // accommodates the spec exactly; the flat scan (63) does not.
    let obs = ObsSink::disabled();
    for (capacity, fires) in [(255usize, true), (256, false), (63, true)] {
        let report = lint_spec_obs_with_capacity(&spec, &obs, capacity);
        assert_eq!(
            report.has_code("F013"),
            fires,
            "capacity {capacity} on {units} units"
        );
    }
    assert_eq!(
        Enumerator::BranchAndBound.unit_capacity(),
        256,
        "the F013 gate and the mask width must agree"
    );
    assert_eq!(Enumerator::Flat.unit_capacity(), 63);

    let analysis = analyze_spec(&spec);
    assert!(analysis.analyzed);
    assert_eq!(analysis.facts.unit_count, 256);
    assert!(analysis.facts.mandatory.count_ones() >= 254);

    let (on, off) = assert_on_off_equal("capacity-256", &spec, 1);
    assert!(on.analysis_mandatory_forced > 0);
    assert!(
        on.nodes_visited < off.nodes_visited,
        "analysis must shrink the 256-unit walk: {} !< {}",
        on.nodes_visited,
        off.nodes_visited
    );
}

/// The analyzer runs cleanly over the bundled wide model and a seeded
/// sample of every fuzz domain profile: fact tables are sized to the
/// unit universe and the fact families are disjoint where soundness
/// requires it.
#[test]
fn analyzer_covers_wide_and_every_domain_profile() {
    let mut models = vec![
        ("set-top-box".to_owned(), set_top_box().spec),
        (
            "synthetic-wide".to_owned(),
            synthetic_spec(&SyntheticConfig::wide(13)),
        ),
    ];
    for profile in DomainProfile::all() {
        for seed in 0..3 {
            models.push((format!("{profile}-seed{seed}"), generate(profile, seed)));
        }
    }
    for (name, spec) in models {
        let analysis = analyze_spec(&spec);
        if !analysis.analyzed {
            continue; // error-level lint findings stop the analysis
        }
        let n = analysis.facts.unit_count;
        assert_eq!(analysis.facts.dominated_by.len(), n, "{name}");
        assert_eq!(analysis.facts.dominators.len(), n, "{name}");
        assert_eq!(analysis.facts.class_of.len(), n, "{name}");
        assert_eq!(analysis.unit_names.len(), n, "{name}");
        for k in analysis.facts.mandatory.iter_ones() {
            assert!(
                analysis.facts.dominated_by[k].is_none(),
                "{name}: unit {k} both mandatory and dominated"
            );
            assert!(
                analysis.facts.class_of[k].is_none(),
                "{name}: unit {k} both mandatory and symmetric"
            );
        }
        for class in &analysis.facts.classes {
            assert!(class.len() >= 2, "{name}: singleton symmetry class");
            assert!(
                class.windows(2).all(|w| w[0] < w[1]),
                "{name}: class members out of order"
            );
        }
    }

    // The wide model's facts are fully determined: 94 dedicated DSPs are
    // mandatory, the spare processors/ASICs are dominated by CPU0.
    let wide = analyze_spec(&synthetic_spec(&SyntheticConfig::wide(13)));
    assert_eq!(wide.facts.mandatory.count_ones(), 94);
    assert_eq!(wide.facts.dominated_count(), 3);
}

/// Acceptance: with the analysis on, branch-and-bound visits strictly
/// fewer nodes on the wide model while keeping a byte-identical candidate
/// list at 1 and 4 threads, and each new counter attributes its pruning.
#[test]
fn analysis_strictly_shrinks_the_wide_walk() {
    let spec = synthetic_spec(&SyntheticConfig::wide(13));
    for threads in [1usize, 4] {
        let (on, off) = assert_on_off_equal("synthetic-wide", &spec, threads);
        assert!(
            on.nodes_visited < off.nodes_visited,
            "threads {threads}: analysis must shrink the walk: {} !< {}",
            on.nodes_visited,
            off.nodes_visited
        );
        assert!(on.analysis_mandatory_forced > 0, "threads {threads}");
        assert_eq!(
            off.analysis_mandatory_forced, 0,
            "threads {threads}: counter must be silent with the analysis off"
        );
        assert_eq!(off.analysis_subtrees_skipped, 0);
        assert_eq!(off.symmetry_orbit_expansions, 0);
    }
}

/// The full explore pipeline surfaces the analysis counters in the obs
/// report, and the front is identical with the pruning on or off.
#[test]
fn explore_publishes_analysis_counters() {
    let spec = synthetic_spec(&SyntheticConfig::wide(13));
    let mut fronts = Vec::new();
    for analysis in [true, false] {
        let options = ExploreOptions {
            allocation: AllocationOptions {
                analysis,
                ..AllocationOptions::default()
            },
            ..ExploreOptions::paper()
        };
        let sink = ObsSink::enabled();
        let result = explore_with_obs(&spec, &options, &sink).unwrap();
        fronts.push(serde_json::to_string(&result.front).unwrap());
        let report = sink.report("analysis-test", "synthetic-wide", 1);
        let forced = report.counter("analysis_mandatory_forced");
        if analysis {
            assert!(forced.is_some_and(|v| v > 0), "{forced:?}");
        } else {
            assert_eq!(forced.unwrap_or(0), 0);
        }
    }
    assert_eq!(
        fronts[0], fronts[1],
        "front must not depend on the analysis"
    );
}

/// Symmetry-orbit pruning fires and expands back to the exact candidate
/// list on a model with interchangeable units: two identical processors
/// mapped identically form one symmetry class.
#[test]
fn symmetry_classes_are_detected_and_expanded() {
    // Two processors with identical mapping profiles: symmetric.
    let spec = synthetic_spec(&SyntheticConfig {
        seed: 9,
        applications: 1,
        interfaces_per_app: 1,
        alternatives: 2,
        processors: 3,
        asics: 0,
        fpga_designs: 0,
        constrained_fraction: 0.0,
        dedicated_tasks: 2,
    });
    let compiled = CompiledSpec::new(&spec);
    let units = flexplore::explore_crate::allocatable_units(&spec);
    let facts = compute_facts(&compiled, &units);
    if facts.classes.is_empty() {
        // The generator may specialize the processors; the on/off
        // equivalence below still exercises the remap path.
        eprintln!("note: no symmetry class in this seed");
    }
    let (on, _) = assert_on_off_equal("symmetry", &spec, 1);
    if !facts.classes.is_empty() {
        assert!(
            on.symmetry_orbit_expansions > 0 || on.nodes_visited > 0,
            "orbit pruning bookkeeping missing"
        );
    }
}

/// Doc-sync: every diagnostic code emitted by the lint passes or the
/// analysis module has a catalog row in DESIGN.md, so the catalog can
/// never silently fall behind the implementation.
#[test]
fn every_emitted_code_has_a_design_md_catalog_row() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut sources =
        vec![std::fs::read_to_string(root.join("crates/lint/src/passes.rs")).unwrap()];
    for entry in std::fs::read_dir(root.join("crates/lint/src/analysis")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            sources.push(std::fs::read_to_string(path).unwrap());
        }
    }
    let mut codes: Vec<String> = Vec::new();
    for source in &sources {
        for (i, _) in source.match_indices("code: \"F0") {
            let code = &source[i + 7..i + 11];
            assert!(
                code.len() == 4 && code.starts_with('F'),
                "malformed code literal {code:?}"
            );
            if !codes.contains(&code.to_string()) {
                codes.push(code.to_string());
            }
        }
    }
    assert!(
        codes.len() >= 16,
        "expected the full F001..F016 catalog to be emitted, found {codes:?}"
    );
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    for code in &codes {
        let row = format!("| `{code}` |");
        assert!(
            design.contains(&row),
            "DESIGN.md is missing a catalog row for {code}"
        );
    }
}
