//! Branch-and-bound lattice enumeration vs. the flat-scan oracle.
//!
//! The bound-driven search must keep **exactly** the candidate list of the
//! exhaustive flat scan — same allocations, same costs, same estimates,
//! same order — while visiting strictly fewer decision nodes, and it must
//! be byte-identical to itself at any `--threads` setting (front, counters
//! and observability report alike).

use flexplore::explore_crate::possible_resource_allocations_obs;
use flexplore::models::dual_slot_fpga;
use flexplore::{
    explore_with_obs, set_top_box, synthetic_spec, AllocationOptions, CompiledSpec, Enumerator,
    ExploreOptions, ObsSink, SpecificationGraph, SyntheticConfig,
};

/// Bundled models small enough for the 2^units flat scan to finish fast.
fn oracle_models() -> Vec<(&'static str, SpecificationGraph)> {
    vec![
        ("set-top-box", set_top_box().spec),
        ("tv-decoder", flexplore::tv_decoder().spec),
        ("dual-slot-fpga", dual_slot_fpga().spec),
        (
            "synthetic-small",
            synthetic_spec(&SyntheticConfig::small(7)),
        ),
        (
            "synthetic-medium",
            synthetic_spec(&SyntheticConfig::medium(11)),
        ),
    ]
}

fn allocation_options(enumerator: Enumerator, threads: usize) -> AllocationOptions {
    AllocationOptions {
        enumerator,
        threads,
        ..AllocationOptions::default()
    }
}

/// The flat scan and the lattice search keep the same candidate list —
/// byte-for-byte, via the serialized form — and agree on the enumerator-
/// independent counters, at every thread count.
#[test]
fn bnb_keeps_exactly_the_flat_scan_candidates() {
    for (name, spec) in oracle_models() {
        let compiled = CompiledSpec::new(&spec);
        let (flat_candidates, flat_stats) = possible_resource_allocations_obs(
            &compiled,
            &allocation_options(Enumerator::Flat, 1),
            &ObsSink::disabled(),
        )
        .unwrap();
        let flat_json = serde_json::to_string(&flat_candidates).unwrap();
        for threads in [1, 2, 4] {
            let (bnb_candidates, bnb_stats) = possible_resource_allocations_obs(
                &compiled,
                &allocation_options(Enumerator::BranchAndBound, threads),
                &ObsSink::disabled(),
            )
            .unwrap();
            let bnb_json = serde_json::to_string(&bnb_candidates).unwrap();
            assert_eq!(
                flat_json, bnb_json,
                "{name}: candidates diverged at {threads} threads"
            );
            assert_eq!(flat_stats.units, bnb_stats.units, "{name}");
            assert_eq!(flat_stats.subsets, bnb_stats.subsets, "{name}");
            assert_eq!(flat_stats.kept, bnb_stats.kept, "{name}");
            assert_eq!(
                bnb_stats.pruned_structurally + bnb_stats.infeasible + bnb_stats.kept,
                bnb_stats.subsets,
                "{name}: sum invariant broken at {threads} threads"
            );
            // A DFS over the subset lattice has at most 2^(n+1)-1 decision
            // nodes; on tiny models with few pruning opportunities it may
            // exceed the flat scan's 2^n, but never the structural bound.
            assert!(
                bnb_stats.nodes_visited < 2 * bnb_stats.subsets,
                "{name}: lattice search exceeded the structural node bound"
            );
        }
    }
}

/// Word-boundary regression: models with exactly 63, 64 and 65 allocatable
/// units — straddling the one-word mask boundary where `1u64 << 64` or
/// `u64::MAX >> (64 - n)` style shifts silently wrap or panic — explore
/// under branch-and-bound with non-empty, thread-invariant fronts.
#[test]
fn word_boundary_unit_counts_explore_cleanly() {
    for (dedicated, expected_units) in [(61usize, 63usize), (62, 64), (63, 65)] {
        let config = SyntheticConfig {
            seed: 5,
            applications: 1,
            interfaces_per_app: 1,
            alternatives: 2,
            processors: 1,
            asics: 0,
            fpga_designs: 0,
            constrained_fraction: 0.0,
            dedicated_tasks: dedicated,
        };
        let spec = synthetic_spec(&config);
        assert_eq!(
            flexplore::explore_crate::allocatable_units(&spec).len(),
            expected_units
        );
        let mut fronts = Vec::new();
        for threads in [1usize, 4] {
            let options = ExploreOptions {
                allocation: AllocationOptions {
                    threads,
                    ..AllocationOptions::default()
                },
                ..ExploreOptions::paper()
            }
            .with_threads(threads);
            let result = flexplore::explore(&spec, &options).unwrap();
            assert!(
                !result.front.is_empty(),
                "{expected_units} units: empty front"
            );
            fronts.push(serde_json::to_string(&result.front).unwrap());
        }
        assert_eq!(
            fronts[0], fronts[1],
            "{expected_units} units: fronts diverged across thread counts"
        );
    }
}

/// The ISSUE acceptance bound: on the paper's Set-Top box case study the
/// lattice search expands fewer than half of the flat scan's subsets while
/// reproducing the published Pareto front exactly.
#[test]
fn set_top_box_visits_under_half_of_the_lattice() {
    let stb = set_top_box();
    let flat_options = ExploreOptions {
        allocation: AllocationOptions {
            enumerator: Enumerator::Flat,
            ..AllocationOptions::default()
        },
        ..ExploreOptions::paper()
    };
    let bnb_options = ExploreOptions::paper();
    let flat = flexplore::explore(&stb.spec, &flat_options).unwrap();
    let bnb = flexplore::explore(&stb.spec, &bnb_options).unwrap();
    assert_eq!(
        serde_json::to_string(&flat.front).unwrap(),
        serde_json::to_string(&bnb.front).unwrap(),
        "the two enumerators must produce a byte-identical front"
    );
    assert!(
        bnb.stats.allocations.nodes_visited < flat.stats.allocations.subsets / 2,
        "expected < {} nodes, visited {}",
        flat.stats.allocations.subsets / 2,
        bnb.stats.allocations.nodes_visited
    );
    assert!(bnb.stats.allocations.subtrees_pruned > 0);
}

/// Full-pipeline thread invariance, including the 24-unit synthetic-large
/// model (infeasible under the flat scan) and the 102-unit synthetic-wide
/// model (past the one-word mask boundary): front, search counters and the
/// aggregated observability counters are byte-identical at 1/2/4 threads.
#[test]
fn bnb_front_counters_and_obs_are_thread_invariant() {
    let mut models = oracle_models();
    models.push((
        "synthetic-large",
        synthetic_spec(&SyntheticConfig::large(11)),
    ));
    models.push(("synthetic-wide", synthetic_spec(&SyntheticConfig::wide(13))));
    for (name, spec) in models {
        let mut baseline: Option<(String, String)> = None;
        for threads in [1usize, 2, 4, 8] {
            let options = ExploreOptions {
                allocation: AllocationOptions {
                    threads,
                    ..AllocationOptions::default()
                },
                ..ExploreOptions::paper()
            }
            .with_threads(threads);
            let sink = ObsSink::enabled();
            let result = explore_with_obs(&spec, &options, &sink).unwrap();
            let report = sink.report("lattice-test", name, threads);
            let fingerprint = (
                format!(
                    "{}|{:?}",
                    serde_json::to_string(&result.front).unwrap(),
                    result.stats.allocations
                ),
                report.counters_json().unwrap(),
            );
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(expected) => {
                    assert_eq!(
                        expected.0, fingerprint.0,
                        "{name}: front/stats diverged at {threads} threads"
                    );
                    assert_eq!(
                        expected.1, fingerprint.1,
                        "{name}: obs counters diverged at {threads} threads"
                    );
                }
            }
        }
    }
}
